//! Aligned ASCII tables for terminal reports.

/// A simple column-aligned table builder.
///
/// ```
/// use dfly_stats::AsciiTable;
/// let mut t = AsciiTable::new(vec!["config", "median (ms)"]);
/// t.row(vec!["cont-min".into(), "265.1".into()]);
/// t.row(vec!["rand-adp".into(), "243.9".into()]);
/// let s = t.render();
/// assert!(s.contains("cont-min"));
/// assert!(s.lines().count() >= 4); // header, rule, 2 rows
/// ```
pub struct AsciiTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> AsciiTable {
        AsciiTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Panics if the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with padded columns, a header rule, and trailing newline.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numeric-looking cells, left-align text.
                let numeric = cell
                    .chars()
                    .all(|c| c.is_ascii_digit() || ".-+%eE".contains(c))
                    && !cell.is_empty();
                if numeric {
                    line.push_str(&format!("{cell:>width$}", width = widths[i]));
                } else {
                    line.push_str(&format!("{cell:<width$}", width = widths[i]));
                }
            }
            line.truncate(line.trim_end().len());
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = AsciiTable::new(vec!["name", "value"]);
        t.row(vec!["a".into(), "1.5".into()]);
        t.row(vec!["longer-name".into(), "10.25".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Header columns aligned with the widest cell.
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    fn numeric_cells_right_aligned() {
        let mut t = AsciiTable::new(vec!["v"]);
        t.row(vec!["1".into()]);
        t.row(vec!["100".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2], "  1");
        assert_eq!(lines[3], "100");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = AsciiTable::new(vec!["a", "b"]);
        assert!(t.is_empty());
        let s = t.render();
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = AsciiTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn len_counts_rows() {
        let mut t = AsciiTable::new(vec!["x"]);
        t.row(vec!["1".into()]);
        t.row(vec!["2".into()]);
        assert_eq!(t.len(), 2);
    }
}
