//! Edge-case and property tests for the statistics layer.
//!
//! The telemetry sinks (`dfly-obs`) and the golden-run regression suite
//! both stand on `dfly-stats`: a wrong quantile or a silently-truncated
//! CSV corrupts every figure downstream. This suite pins the behavior on
//! degenerate inputs (empty, single-sample, all-equal), the `CsvWriter`
//! failure paths, and — via the in-tree `dfly_engine::proptest` harness —
//! the order/consistency invariants of the summaries on random data.

use dfly_engine::proptest::{check, gen, Config};
use dfly_stats::{mean, percentile, sparkline, stddev, BoxStats, Cdf, CsvWriter};
use std::io::{self, Write};

// ---------------------------------------------------------------------------
// Degenerate inputs
// ---------------------------------------------------------------------------

#[test]
fn empty_inputs_are_explicit_not_garbage() {
    // Empty data must yield an explicit "nothing" (None / 0.0 / empty),
    // never a NaN that would propagate into a CSV.
    assert!(BoxStats::from_samples(&[]).is_none());
    assert_eq!(mean(&[]), 0.0);
    assert_eq!(stddev(&[]), 0.0);
    let c = Cdf::from_samples([]);
    assert!(c.is_empty());
    assert_eq!(c.len(), 0);
    assert_eq!(c.fraction_at_or_below(f64::MAX), 0.0);
    assert_eq!(c.min(), None);
    assert_eq!(c.max(), None);
    assert_eq!(c.steps().len(), 0);
    assert_eq!(c.sampled_points(2).len(), 0);
    assert_eq!(sparkline(&[]), "");
}

#[test]
#[should_panic(expected = "quantile of empty CDF")]
fn empty_cdf_quantile_panics() {
    let _ = Cdf::from_samples([]).quantile(0.5);
}

#[test]
fn single_sample_summaries_collapse_to_it() {
    let s = BoxStats::from_samples(&[3.25]).unwrap();
    assert_eq!(
        (s.min, s.q1, s.median, s.q3, s.max, s.mean, s.n),
        (3.25, 3.25, 3.25, 3.25, 3.25, 3.25, 1)
    );
    assert_eq!(s.iqr(), 0.0);
    assert_eq!(s.range(), 0.0);
    let c = Cdf::from_samples([3.25]);
    for p in [0.0, 0.3, 1.0] {
        assert_eq!(c.quantile(p), 3.25);
    }
    assert_eq!(c.steps().collect::<Vec<_>>(), vec![(3.25, 100.0)]);
    assert_eq!(percentile(&[3.25], 99.0), 3.25);
}

#[test]
fn all_equal_samples_have_zero_spread() {
    let data = [7.0; 64];
    let s = BoxStats::from_samples(&data).unwrap();
    assert_eq!((s.min, s.median, s.max, s.mean), (7.0, 7.0, 7.0, 7.0));
    assert_eq!(s.iqr(), 0.0);
    assert_eq!(s.variability_percent(), 0.0);
    assert_eq!(stddev(&data), 0.0);
    let c = Cdf::from_samples(data);
    assert_eq!(c.percent_at_or_below(7.0), 100.0);
    assert_eq!(c.percent_at_or_below(6.999), 0.0);
    // A flat series renders as a flat sparkline, one glyph per point.
    let line = sparkline(&[7.0, 7.0, 7.0]);
    assert_eq!(line.chars().count(), 3);
    assert_eq!(
        line.chars().collect::<std::collections::HashSet<_>>().len(),
        1
    );
}

#[test]
fn zero_median_variability_is_defined() {
    // All-zero comm times (a degenerate run) must not divide by zero.
    let s = BoxStats::from_samples(&[0.0, 0.0, 0.0]).unwrap();
    assert_eq!(s.variability_percent(), 0.0);
}

// ---------------------------------------------------------------------------
// CsvWriter failure paths
// ---------------------------------------------------------------------------

/// A writer that fails after `ok_writes` successful calls.
#[derive(Debug)]
struct FailingWriter {
    ok_writes: usize,
}

impl Write for FailingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.ok_writes == 0 {
            return Err(io::Error::new(io::ErrorKind::Other, "disk full"));
        }
        self.ok_writes -= 1;
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Err(io::Error::new(io::ErrorKind::Other, "flush failed"))
    }
}

#[test]
fn csv_io_errors_are_propagated_not_swallowed() {
    // Header write fails immediately.
    let err = CsvWriter::from_writer(FailingWriter { ok_writes: 0 }, &["a"])
        .map(|_| ())
        .unwrap_err();
    assert_eq!(err.to_string(), "disk full");

    // Row write fails after a good header (header = several small writes;
    // give it plenty, then exhaust).
    let mut w = CsvWriter::from_writer(FailingWriter { ok_writes: 2 }, &["a"]).unwrap();
    assert!(w.row(&["x"]).and_then(|_| w.row(&["y"])).is_err());

    // finish() surfaces flush errors.
    let w = CsvWriter::from_writer(FailingWriter { ok_writes: 100 }, &["a"]).unwrap();
    assert_eq!(w.finish().unwrap_err().to_string(), "flush failed");
}

#[test]
fn csv_create_fails_when_parent_is_a_file() {
    let dir = std::env::temp_dir().join("dfly_stats_edge_create_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let blocker = dir.join("not_a_dir");
    std::fs::write(&blocker, b"file").unwrap();
    // Parent path exists but is a regular file: create_dir_all must fail
    // and CsvWriter::create must report it rather than panic.
    assert!(CsvWriter::create(blocker.join("x.csv"), &["a"]).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[should_panic(expected = "arity")]
fn csv_row_arity_is_enforced_on_every_row() {
    let mut w = CsvWriter::from_writer(Vec::new(), &["a", "b", "c"]).unwrap();
    w.row(&["1", "2", "3"]).unwrap();
    let _ = w.row(&["1", "2"]);
}

#[test]
#[should_panic(expected = "at least one column")]
fn csv_empty_header_rejected() {
    let _ = CsvWriter::from_writer(Vec::new(), &[]);
}

// ---------------------------------------------------------------------------
// Properties on random data (in-tree harness, no external crates)
// ---------------------------------------------------------------------------

#[test]
fn box_stats_ordered_and_bounded_property() {
    check(
        "box_stats_ordered_and_bounded",
        &Config::with_cases(128),
        |rng| gen::vec_f64(rng, 1, 200, -1e6, 1e6),
        |data| {
            let s = BoxStats::from_samples(data).expect("non-empty");
            if !(s.min <= s.q1 && s.q1 <= s.median && s.median <= s.q3 && s.q3 <= s.max) {
                return Err(format!("five-number summary out of order: {s:?}"));
            }
            if s.mean < s.min || s.mean > s.max {
                return Err(format!("mean {} outside [min, max]", s.mean));
            }
            if s.n != data.len() {
                return Err(format!("n {} != len {}", s.n, data.len()));
            }
            Ok(())
        },
    );
}

#[test]
fn cdf_quantile_and_fraction_are_inverse_property() {
    check(
        "cdf_quantile_fraction_inverse",
        &Config::with_cases(128),
        |rng| {
            (
                gen::vec_f64(rng, 1, 200, 0.0, 1e3),
                rng.next_f64(), // fraction in [0, 1)
            )
        },
        |(data, frac)| {
            let c = Cdf::from_samples(data.iter().copied());
            let q = c.quantile(*frac);
            // The mass at or below quantile(frac) approximates frac to
            // within one sample's weight (rank interpolation lands q
            // between the two samples bracketing rank frac*(n-1)).
            let covered = c.fraction_at_or_below(q);
            let slack = 1.0 / data.len() as f64 + 1e-9;
            if covered + slack < *frac {
                return Err(format!(
                    "quantile({frac}) = {q} but only {covered} of mass <= it"
                ));
            }
            if q < c.min().unwrap() || q > c.max().unwrap() {
                return Err(format!("quantile {q} outside sample range"));
            }
            Ok(())
        },
    );
}

#[test]
fn cdf_steps_monotone_property() {
    check(
        "cdf_steps_monotone",
        &Config::with_cases(64),
        |rng| gen::vec_f64(rng, 1, 300, -50.0, 50.0),
        |data| {
            let steps: Vec<_> = Cdf::from_samples(data.iter().copied()).steps().collect();
            for w in steps.windows(2) {
                if w[1].0 < w[0].0 || w[1].1 <= w[0].1 {
                    return Err(format!("non-monotone steps: {:?} -> {:?}", w[0], w[1]));
                }
            }
            if (steps.last().unwrap().1 - 100.0).abs() > 1e-9 {
                return Err("last step != 100%".into());
            }
            Ok(())
        },
    );
}

#[test]
fn csv_roundtrip_field_count_property() {
    // Whatever the field contents (commas, quotes, newlines), a reader
    // honoring RFC-4180 quoting sees exactly `columns` fields per row.
    check(
        "csv_roundtrip_field_count",
        &Config::with_cases(64),
        |rng| {
            let alphabet = [",", "\"", "\n", "a", "1", " "];
            gen::vec_with(rng, 1, 5, |r| {
                let len = r.range_inclusive(0, 8) as usize;
                (0..len)
                    .map(|_| alphabet[r.index(alphabet.len())])
                    .collect::<String>()
            })
        },
        |fields| {
            let mut w = CsvWriter::from_writer(Vec::new(), &vec!["h"; fields.len()]).unwrap();
            w.row(fields).unwrap();
            let bytes = w.finish().unwrap();
            let text = String::from_utf8(bytes).unwrap();
            // Minimal RFC-4180 parse of the second record.
            let mut rows = Vec::new();
            let mut field = String::new();
            let mut row = Vec::new();
            let mut in_quotes = false;
            let mut chars = text.chars().peekable();
            while let Some(ch) = chars.next() {
                match ch {
                    '"' if in_quotes => {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            field.push('"');
                        } else {
                            in_quotes = false;
                        }
                    }
                    '"' => in_quotes = true,
                    ',' if !in_quotes => row.push(std::mem::take(&mut field)),
                    '\n' if !in_quotes => {
                        row.push(std::mem::take(&mut field));
                        rows.push(std::mem::take(&mut row));
                    }
                    other => field.push(other),
                }
            }
            if rows.len() != 2 {
                return Err(format!("expected header + 1 row, parsed {}", rows.len()));
            }
            if rows[1].len() != fields.len() {
                return Err(format!(
                    "wrote {} fields, parsed {}",
                    fields.len(),
                    rows[1].len()
                ));
            }
            if rows[1] != *fields {
                return Err(format!("roundtrip mismatch: {:?} != {:?}", rows[1], fields));
            }
            Ok(())
        },
    );
}
