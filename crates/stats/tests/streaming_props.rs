//! Property tests for the streaming metric structures (ISSUE 10
//! satellite): reservoir CDFs track the dense CDF within analytic
//! tolerance, merges are exactly equivalent to single-stream feeds,
//! timeline coarsening preserves byte mass, and everything is
//! deterministic across runs and split points (the shard-count axis).

use dfly_engine::proptest::{check, check_with_shrink, gen, shrink, Config};
use dfly_engine::{Ns, Xoshiro256};
use dfly_stats::{Cdf, CoarseTimeline, ReservoirCdf, StreamSummary};

/// Reservoir quantiles vs the dense CDF on the same stream: for K
/// samples from a population, the empirical quantile's standard error in
/// *rank* space is sqrt(q(1-q)/K) <= 0.5/sqrt(K). We assert a 6-sigma
/// band, translated into value space through the dense CDF itself, so
/// the bound adapts to whatever distribution the generator produced.
#[test]
fn reservoir_quantiles_within_analytic_tolerance() {
    check(
        "reservoir_quantiles_within_analytic_tolerance",
        &Config::with_cases(24),
        |rng| {
            let data = gen::vec_f64(rng, 2000, 6000, 0.0, 1e6);
            let seed = rng.next_u64();
            (data, seed)
        },
        |(data, seed)| {
            let k = 512usize;
            let dense = Cdf::from_samples(data.iter().copied());
            let mut res = ReservoirCdf::new(k, *seed);
            res.extend(data.iter().copied());
            if res.len() != k {
                return Err(format!("reservoir holds {} of {k}", res.len()));
            }
            let sigma = 0.5 / (k as f64).sqrt();
            for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
                let est = res.quantile(q);
                // The streamed estimate must land between the dense
                // quantiles at q ± 6σ (rank-space tolerance mapped
                // through the dense distribution).
                let lo = dense.quantile((q - 6.0 * sigma).max(0.0));
                let hi = dense.quantile((q + 6.0 * sigma).min(1.0));
                if est < lo || est > hi {
                    return Err(format!(
                        "q{q}: reservoir {est} outside dense band [{lo}, {hi}]"
                    ));
                }
            }
            Ok(())
        },
    );
}

/// merge(prefix-reservoir, continuation-fed-suffix) is *identical* to
/// feeding the whole stream through one reservoir — the exact property
/// the sharded drain depends on — at every split point, in both merge
/// directions.
#[test]
fn reservoir_merge_equals_single_stream_feed() {
    check_with_shrink(
        "reservoir_merge_equals_single_stream_feed",
        &Config::with_cases(32),
        |rng| {
            let data = gen::vec_f64(rng, 1, 800, 0.0, 1e9);
            let cut = rng.next_below(data.len() as u64 + 1) as usize;
            let seed = rng.next_u64();
            let k = 1 + rng.next_below(64) as usize;
            (data, cut, seed, k)
        },
        |(data, cut, seed, k)| {
            let mut cands: Vec<_> = shrink::vec(data, |_| Vec::new())
                .into_iter()
                .map(|d| {
                    let c = (*cut).min(d.len());
                    (d, c, *seed, *k)
                })
                .collect();
            cands.extend(
                shrink::usize_toward(1, *k)
                    .into_iter()
                    .map(|k2| (data.clone(), *cut, *seed, k2)),
            );
            cands
        },
        |(data, cut, seed, k)| {
            let mut single = ReservoirCdf::new(*k, *seed);
            single.extend(data.iter().copied());

            let mut left = ReservoirCdf::new(*k, *seed);
            left.extend(data[..*cut].iter().copied());
            let mut right = left.continuation();
            right.extend(data[*cut..].iter().copied());

            let mut fwd = left.clone();
            fwd.merge_from(&right);
            if fwd.values() != single.values() || fwd.seen() != single.seen() {
                return Err(format!(
                    "merge != single feed at cut {cut}: {:?} vs {:?}",
                    fwd.values(),
                    single.values()
                ));
            }
            let mut rev = right.clone();
            rev.merge_from(&left);
            if rev.values() != single.values() {
                return Err("merge is order-dependent".into());
            }
            Ok(())
        },
    );
}

/// Summary merge ≡ single feed: count/min/max/histogram exactly, sum to
/// floating-point reassociation error; quantile estimates agree exactly
/// (they read only exact fields).
#[test]
fn summary_merge_equals_single_stream_feed() {
    check(
        "summary_merge_equals_single_stream_feed",
        &Config::with_cases(48),
        |rng| {
            let data = gen::vec_f64(rng, 1, 600, 0.0, 1e12);
            let cut = rng.next_below(data.len() as u64 + 1) as usize;
            (data, cut)
        },
        |(data, cut)| {
            let mut single = StreamSummary::new();
            for &v in data.iter() {
                single.record(v);
            }
            let (mut a, mut b) = (StreamSummary::new(), StreamSummary::new());
            for &v in &data[..*cut] {
                a.record(v);
            }
            for &v in &data[*cut..] {
                b.record(v);
            }
            a.merge_from(&b);
            if a.count() != single.count() {
                return Err("count mismatch".into());
            }
            if a.min() != single.min() || a.max() != single.max() {
                return Err("extrema mismatch".into());
            }
            let tol = 1e-9 * single.sum().abs().max(1.0);
            if (a.sum() - single.sum()).abs() > tol {
                return Err(format!("sum {} vs {}", a.sum(), single.sum()));
            }
            for q in [0.1, 0.5, 0.9] {
                if a.quantile(q) != single.quantile(q) {
                    return Err(format!("quantile({q}) mismatch"));
                }
            }
            Ok(())
        },
    );
}

/// Summary quantiles stay within the documented quarter-octave bin
/// tolerance (~9% relative) of the dense quantile on positive streams.
#[test]
fn summary_quantiles_within_documented_tolerance() {
    check(
        "summary_quantiles_within_documented_tolerance",
        &Config::with_cases(24),
        |rng| gen::vec_f64(rng, 500, 3000, 1.0, 1e9),
        |data| {
            let dense = Cdf::from_samples(data.iter().copied());
            let mut s = StreamSummary::new();
            for &v in data.iter() {
                s.record(v);
            }
            for q in [0.25, 0.5, 0.75] {
                let d = dense.quantile(q);
                let est = s.quantile(q);
                // Bin width 2^(1/4): estimate within one half-bin
                // (2^(1/8) ≈ 1.0905) of the dense value, plus slack for
                // the rank falling at a bin edge — 12% covers both.
                if (est - d).abs() / d > 0.12 {
                    return Err(format!("q{q}: dense {d} vs summary {est}"));
                }
            }
            Ok(())
        },
    );
}

/// Coarsening preserves total byte mass exactly, never exceeds the bin
/// cap, and merging timelines of different widths preserves the combined
/// mass in both merge orders.
#[test]
fn timeline_coarsening_preserves_mass() {
    check_with_shrink(
        "timeline_coarsening_preserves_mass",
        &Config::with_cases(48),
        |rng| {
            let events: Vec<(u64, u64)> = gen::vec_with(rng, 1, 400, |r| {
                (r.next_below(1 << 40), r.next_below(1 << 20))
            });
            let cut = rng.next_below(events.len() as u64 + 1) as usize;
            let max_bins = 1usize << (1 + rng.next_below(8)) as usize;
            (events, cut, max_bins)
        },
        |(events, cut, max_bins)| {
            shrink::vec(events, |_| Vec::new())
                .into_iter()
                .map(|e| {
                    let c = (*cut).min(e.len());
                    (e, c, *max_bins)
                })
                .collect()
        },
        |(events, cut, max_bins)| {
            let mut whole = CoarseTimeline::new(Ns(64), 1, *max_bins);
            let mut mass = 0u64;
            for &(at, bytes) in events.iter() {
                whole.record(0, Ns(at), bytes);
                mass += bytes;
            }
            if whole.total(0) != mass {
                return Err(format!("mass {} != {}", whole.total(0), mass));
            }
            if whole.series(0).len() > *max_bins {
                return Err(format!(
                    "bins {} exceed cap {max_bins}",
                    whole.series(0).len()
                ));
            }
            // Split feed + merge preserves mass in both orders.
            let mut a = CoarseTimeline::new(Ns(64), 1, *max_bins);
            let mut b = CoarseTimeline::new(Ns(64), 1, *max_bins);
            for &(at, bytes) in &events[..*cut] {
                a.record(0, Ns(at), bytes);
            }
            for &(at, bytes) in &events[*cut..] {
                b.record(0, Ns(at), bytes);
            }
            let mut ab = a.clone();
            ab.merge_from(&b);
            let mut ba = b.clone();
            ba.merge_from(&a);
            if ab.total(0) != mass || ba.total(0) != mass {
                return Err("merge loses mass".into());
            }
            if ab != ba {
                return Err("merge is order-dependent".into());
            }
            Ok(())
        },
    );
}

/// Determinism across runs and across shard counts: feeding the same
/// tagged stream through 1, 2, or 4 "shards" (continuation reservoirs,
/// split summaries) and merging yields byte-identical retained state.
#[test]
fn streaming_structures_deterministic_across_shard_counts() {
    check(
        "streaming_structures_deterministic_across_shard_counts",
        &Config::with_cases(24),
        |rng| {
            let data = gen::vec_f64(rng, 4, 500, 0.0, 1e9);
            let seed = rng.next_u64();
            (data, seed)
        },
        |(data, seed)| {
            let k = 32usize;
            let feed_sharded = |shards: usize| -> (Vec<f64>, u64, Vec<u64>) {
                // Chain continuation reservoirs across contiguous
                // chunks, then merge in a scrambled order to prove
                // order-independence.
                let chunk = data.len().div_ceil(shards);
                let mut parts: Vec<ReservoirCdf> = Vec::new();
                let mut summaries: Vec<StreamSummary> = Vec::new();
                for (i, slice) in data.chunks(chunk).enumerate() {
                    let mut r = if i == 0 {
                        ReservoirCdf::new(k, *seed)
                    } else {
                        parts[i - 1].continuation()
                    };
                    r.extend(slice.iter().copied());
                    parts.push(r);
                    let mut s = StreamSummary::new();
                    for &v in slice {
                        s.record(v);
                    }
                    summaries.push(s);
                }
                let mut merged = parts.pop().unwrap();
                while let Some(p) = parts.pop() {
                    merged.merge_from(&p);
                }
                let mut sum = summaries.remove(0);
                for s in &summaries {
                    sum.merge_from(s);
                }
                let hist: Vec<u64> = (0..=100)
                    .step_by(25)
                    .map(|p| sum.quantile(p as f64 / 100.0).to_bits())
                    .collect();
                (merged.values(), merged.seen(), hist)
            };
            let one = feed_sharded(1);
            for shards in [2usize, 4] {
                let s = feed_sharded(shards);
                if s.0 != one.0 || s.1 != one.1 {
                    return Err(format!("reservoir differs at {shards} shards"));
                }
                if s.2 != one.2 {
                    return Err(format!("summary quantiles differ at {shards} shards"));
                }
            }
            // Two identical runs are byte-identical.
            if feed_sharded(3) != feed_sharded(3) {
                return Err("two runs differ".into());
            }
            Ok(())
        },
    );
}

/// The structures' footprints are bounded: feeding 100x more data does
/// not grow retained bytes.
#[test]
fn streaming_footprints_bounded() {
    let mut r = ReservoirCdf::new(256, 1);
    let mut s = StreamSummary::new();
    let mut t = CoarseTimeline::new(Ns(1), 5, 512);
    let mut rng = Xoshiro256::seed_from(7);
    for i in 0..1000u64 {
        let v = rng.next_f64() * 1e6;
        r.push(v);
        s.record(v);
        t.record((i % 5) as usize, Ns(i * 37), i % 1000);
    }
    let (rb, sb, tb) = (r.approx_bytes(), s.approx_bytes(), t.approx_bytes());
    for i in 1000..100_000u64 {
        let v = rng.next_f64() * 1e6;
        r.push(v);
        s.record(v);
        t.record((i % 5) as usize, Ns(i * i), i % 1000);
    }
    assert_eq!(r.approx_bytes(), rb, "reservoir grew");
    assert_eq!(s.approx_bytes(), sb, "summary grew");
    assert!(
        t.approx_bytes() <= tb.max(5 * 512 * 8 + 256),
        "timeline grew past cap"
    );
}
