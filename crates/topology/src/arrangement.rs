//! Pluggable global-link arrangements.
//!
//! A dragonfly's inter-group wiring is a free parameter: for a fixed shape
//! every group pair receives `links_per_group_pair` parallel links, but
//! *which router* in each group terminates each link is an arrangement
//! choice (caminos-lib exposes the same knob). The arrangement changes
//! path diversity and gateway contention without touching the group
//! partition, so everything keyed off groups — the sharded PDES engine,
//! placement, audits — is unaffected.
//!
//! [`GlobalArrangement::plan`] materializes the choice as the flat list of
//! local endpoint indices consumed by [`Topology::build`]
//! (`crate::Topology::build`) in canonical pair order, so every
//! arrangement flows through the identical channel-id enumeration.

use crate::config::TopologyConfig;
use dfly_engine::Xoshiro256;

/// How global-link endpoints are assigned to routers within each group.
///
/// All variants keep the per-router global degree exactly
/// `global_links_per_router` and give every group pair its full share of
/// parallel links; they differ only in which routers pair up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GlobalArrangement {
    /// The historical wiring (and the default): a rotating per-group
    /// cursor with a coprime stride assigns endpoints round-robin over
    /// the router grid. Byte-identical to the pre-arrangement builds.
    RoundRobin,
    /// Consecutive (caminos-lib's default-like layout): each group's
    /// endpoint slots are split into `groups - 1` consecutive chunks, and
    /// chunk `c` connects to the group's `c`-th peer in increasing group
    /// order. Parallel links of a pair land on consecutive routers.
    Consecutive,
    /// Palm-tree (Marina García's thesis; caminos-lib `Palmtree`): chunk
    /// `d` of group `i` connects to group `(i - 1 - d) mod g`, giving the
    /// rotation-symmetric cabling used in most dragonfly literature.
    PalmTree,
    /// Seeded-random: the consecutive chunk structure with each group's
    /// endpoint slots permuted by a seeded Fisher-Yates shuffle. The same
    /// seed always yields the same wiring (two builds are byte-identical).
    Random {
        /// Wiring seed; independent from the experiment master seed so a
        /// machine can be held fixed across a sweep.
        seed: u64,
    },
}

impl Default for GlobalArrangement {
    fn default() -> GlobalArrangement {
        GlobalArrangement::RoundRobin
    }
}

impl GlobalArrangement {
    /// Short label for config nomenclature and CSV headers.
    pub fn label(&self) -> String {
        match self {
            GlobalArrangement::RoundRobin => "rr".into(),
            GlobalArrangement::Consecutive => "consec".into(),
            GlobalArrangement::PalmTree => "palm".into(),
            GlobalArrangement::Random { seed } => format!("rand{seed:#x}"),
        }
    }

    /// The endpoint plan: for every canonical group pair `(ga, gb)` with
    /// `ga < gb`, iterated in lexicographic order, and every one of the
    /// pair's `links_per_group_pair` links in order, the local router
    /// indices `(la, lb)` terminating that link in `ga` and `gb`.
    ///
    /// The returned vector has exactly
    /// `groups * (groups - 1) / 2 * links_per_group_pair` entries, and
    /// every router index appears exactly `global_links_per_router` times
    /// across its group's entries (uniform global degree).
    pub fn plan(&self, cfg: &TopologyConfig) -> Vec<(u32, u32)> {
        let g = cfg.groups;
        let lpp = cfg.links_per_group_pair();
        let rpg = cfg.routers_per_group();
        let pairs = (g * (g - 1) / 2) as usize;
        let mut out = Vec::with_capacity(pairs * lpp as usize);
        match self {
            GlobalArrangement::RoundRobin => {
                // The exact historical loop: per-group cursors advanced by
                // a stride coprime with the router count.
                let stride = pick_stride(rpg);
                let mut cursor: Vec<u32> = (0..g).map(|grp| (grp * 7) % rpg).collect();
                for ga in 0..g {
                    for gb in (ga + 1)..g {
                        for _ in 0..lpp {
                            let la = cursor[ga as usize];
                            cursor[ga as usize] = (la + stride) % rpg;
                            let lb = cursor[gb as usize];
                            cursor[gb as usize] = (lb + stride) % rpg;
                            out.push((la, lb));
                        }
                    }
                }
            }
            GlobalArrangement::Consecutive | GlobalArrangement::PalmTree => {
                for ga in 0..g {
                    for gb in (ga + 1)..g {
                        let ca = self.chunk_of(ga, gb, g);
                        let cb = self.chunk_of(gb, ga, g);
                        for k in 0..lpp {
                            out.push((ca * lpp + k, cb * lpp + k));
                        }
                    }
                }
            }
            GlobalArrangement::Random { seed } => {
                // Consecutive chunk structure over per-group permutations
                // of the endpoint slots. Each slot is used exactly once,
                // so the uniform-degree invariant survives the shuffle.
                let slots = (rpg * cfg.global_links_per_router) as usize;
                let perms: Vec<Vec<u32>> = (0..g)
                    .map(|grp| {
                        let mut p: Vec<u32> = (0..slots as u32).collect();
                        // Distinct deterministic stream per group.
                        let mut rng = Xoshiro256::seed_from(
                            seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(grp as u64 + 1)),
                        );
                        rng.shuffle(&mut p);
                        p
                    })
                    .collect();
                for ga in 0..g {
                    for gb in (ga + 1)..g {
                        let ca = self.chunk_of(ga, gb, g);
                        let cb = self.chunk_of(gb, ga, g);
                        for k in 0..lpp {
                            let sa = perms[ga as usize][(ca * lpp + k) as usize];
                            let sb = perms[gb as usize][(cb * lpp + k) as usize];
                            out.push((sa, sb));
                        }
                    }
                }
            }
        }

        // Endpoint slots are grouped h-per-router: slot s lives on router
        // s / h, so consecutive slots of a chunk spread over consecutive
        // routers while each router owns exactly h slots.
        if !matches!(self, GlobalArrangement::RoundRobin) {
            let h = cfg.global_links_per_router;
            for e in &mut out {
                e.0 /= h;
                e.1 /= h;
            }
        }
        out
    }

    /// The chunk index (0-based position among a group's `g - 1` peers)
    /// group `grp` dedicates to `peer`.
    fn chunk_of(&self, grp: u32, peer: u32, g: u32) -> u32 {
        debug_assert_ne!(grp, peer);
        match self {
            // Peers in increasing group order.
            GlobalArrangement::Consecutive | GlobalArrangement::Random { .. } => {
                if peer < grp {
                    peer
                } else {
                    peer - 1
                }
            }
            // Chunk d of group i targets (i - 1 - d) mod g, so
            // d = (i - 1 - peer) mod g; d ranges over 0..g-1 as peer
            // ranges over every other group.
            GlobalArrangement::PalmTree => (grp + g - 1 - peer) % g,
            GlobalArrangement::RoundRobin => unreachable!("round-robin has no chunk structure"),
        }
    }
}

/// Pick a cursor stride that cycles through all routers of a group
/// (coprime with `rpg`) while jumping between rows, so parallel links of
/// one group pair spread over the grid.
pub(crate) fn pick_stride(rpg: u32) -> u32 {
    let mut s = rpg / 3 + 1;
    while gcd(s, rpg) != 1 {
        s += 1;
    }
    s
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [GlobalArrangement; 4] = [
        GlobalArrangement::RoundRobin,
        GlobalArrangement::Consecutive,
        GlobalArrangement::PalmTree,
        GlobalArrangement::Random { seed: 0xA11CE },
    ];

    fn degree_check(cfg: &TopologyConfig, plan: &[(u32, u32)]) {
        let g = cfg.groups;
        let rpg = cfg.routers_per_group();
        let mut degree = vec![0u32; (g * rpg) as usize];
        let mut i = 0;
        for ga in 0..g {
            for gb in (ga + 1)..g {
                for _ in 0..cfg.links_per_group_pair() {
                    let (la, lb) = plan[i];
                    assert!(la < rpg && lb < rpg, "endpoint out of range");
                    degree[(ga * rpg + la) as usize] += 1;
                    degree[(gb * rpg + lb) as usize] += 1;
                    i += 1;
                }
            }
        }
        assert_eq!(i, plan.len());
        for (r, &d) in degree.iter().enumerate() {
            assert_eq!(d, cfg.global_links_per_router, "router {r} degree {d}");
        }
    }

    #[test]
    fn every_arrangement_is_degree_uniform() {
        for cfg in [
            TopologyConfig::theta(),
            TopologyConfig::small_test(),
            TopologyConfig::canonical(2, 4, 2, 5),
        ] {
            for arr in ALL {
                degree_check(&cfg, &arr.plan(&cfg));
            }
        }
    }

    #[test]
    fn round_robin_matches_historical_cursor() {
        // Independent reimplementation of the pre-arrangement loop.
        let cfg = TopologyConfig::small_test();
        let rpg = cfg.routers_per_group();
        let stride = pick_stride(rpg);
        let mut cursor: Vec<u32> = (0..cfg.groups).map(|g| (g * 7) % rpg).collect();
        let mut expected = Vec::new();
        for ga in 0..cfg.groups {
            for gb in (ga + 1)..cfg.groups {
                for _ in 0..cfg.links_per_group_pair() {
                    let la = cursor[ga as usize];
                    cursor[ga as usize] = (la + stride) % rpg;
                    let lb = cursor[gb as usize];
                    cursor[gb as usize] = (lb + stride) % rpg;
                    expected.push((la, lb));
                }
            }
        }
        assert_eq!(GlobalArrangement::RoundRobin.plan(&cfg), expected);
    }

    #[test]
    fn palm_tree_chunks_cover_every_peer_once() {
        let g = 9u32;
        let arr = GlobalArrangement::PalmTree;
        for grp in 0..g {
            let mut seen = std::collections::HashSet::new();
            for peer in (0..g).filter(|&p| p != grp) {
                let c = arr.chunk_of(grp, peer, g);
                assert!(c < g - 1, "chunk {c} out of range");
                assert!(seen.insert(c), "group {grp}: chunk {c} reused");
            }
        }
    }

    #[test]
    fn random_is_seed_deterministic_and_seed_sensitive() {
        let cfg = TopologyConfig::small_test();
        let a = GlobalArrangement::Random { seed: 7 }.plan(&cfg);
        let b = GlobalArrangement::Random { seed: 7 }.plan(&cfg);
        assert_eq!(a, b, "same seed must wire identically");
        let c = GlobalArrangement::Random { seed: 8 }.plan(&cfg);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<String> = ALL.iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), ALL.len());
        assert_eq!(GlobalArrangement::Random { seed: 255 }.label(), "rand0xff");
    }

    #[test]
    fn stride_is_coprime() {
        for rpg in [8u32, 32, 96, 100, 7] {
            let s = pick_stride(rpg);
            assert_eq!(gcd(s, rpg), 1);
        }
    }
}
