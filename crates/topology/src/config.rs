//! Topology configuration, with the paper's Theta parameters as default.

use dfly_engine::kv::{kv, ToKv};
use dfly_engine::{Bandwidth, Ns};

/// Shape and link parameters of a dragonfly machine.
///
/// [`TopologyConfig::theta`] is the exact configuration in the paper's
/// Section II: 9 groups x (6 x 16) routers x 4 nodes; 16 GiB/s terminal,
/// 5.25 GiB/s local, 4.69 GiB/s global links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyConfig {
    /// Number of groups.
    pub groups: u32,
    /// Router rows per group (a row is a chassis on Theta).
    pub rows: u32,
    /// Router columns per group.
    pub cols: u32,
    /// Compute nodes attached to each router.
    pub nodes_per_router: u32,
    /// Global link endpoints per router. Total global links per group pair
    /// is `rows * cols * global_links_per_router / (groups - 1)`.
    pub global_links_per_router: u32,
    /// Chassis (rows) per cabinet; Theta: 3.
    pub chassis_per_cabinet: u32,
    /// Terminal (node<->router) link bandwidth.
    pub terminal_bw: Bandwidth,
    /// Local (intra-group) link bandwidth.
    pub local_bw: Bandwidth,
    /// Global (inter-group) link bandwidth.
    pub global_bw: Bandwidth,
    /// Fixed per-hop router traversal latency.
    pub router_latency: Ns,
    /// Propagation latency of local links.
    pub local_latency: Ns,
    /// Propagation latency of global (optical) links.
    pub global_latency: Ns,
    /// Propagation latency of terminal links.
    pub terminal_latency: Ns,
}

impl TopologyConfig {
    /// The paper's Theta configuration (Section II).
    pub fn theta() -> TopologyConfig {
        TopologyConfig {
            groups: 9,
            rows: 6,
            cols: 16,
            nodes_per_router: 4,
            global_links_per_router: 4,
            chassis_per_cabinet: 3,
            terminal_bw: Bandwidth::from_gib_per_sec(16),
            local_bw: Bandwidth::from_gib_per_sec_hundredths(525),
            global_bw: Bandwidth::from_gib_per_sec_hundredths(469),
            // Aries-like latencies: ~100ns per router traversal, short
            // electrical local links, longer optical global links.
            router_latency: Ns(100),
            local_latency: Ns(30),
            global_latency: Ns(1500),
            terminal_latency: Ns(30),
        }
    }

    /// A miniature dragonfly (4 groups of 2x4 routers, 2 nodes/router =
    /// 64 nodes) for fast tests and doctests. Same link speeds as Theta.
    pub fn small_test() -> TopologyConfig {
        TopologyConfig {
            groups: 4,
            rows: 2,
            cols: 4,
            nodes_per_router: 2,
            global_links_per_router: 3,
            chassis_per_cabinet: 2,
            ..TopologyConfig::theta()
        }
    }

    /// A mid-size machine (6 groups of 4x8 routers, 4 nodes/router =
    /// 768 nodes) used by the `--quick` reproduction mode: big enough to
    /// show the placement/routing contrasts, ~4.5x fewer nodes than Theta.
    pub fn quick() -> TopologyConfig {
        TopologyConfig {
            groups: 6,
            rows: 4,
            cols: 8,
            nodes_per_router: 4,
            global_links_per_router: 5,
            chassis_per_cabinet: 2,
            ..TopologyConfig::theta()
        }
    }

    /// Routers per group.
    pub fn routers_per_group(&self) -> u32 {
        self.rows * self.cols
    }

    /// Total routers in the machine.
    pub fn total_routers(&self) -> u32 {
        self.groups * self.routers_per_group()
    }

    /// Total compute nodes in the machine.
    pub fn total_nodes(&self) -> u32 {
        self.total_routers() * self.nodes_per_router
    }

    /// Nodes per chassis (one router row).
    pub fn nodes_per_chassis(&self) -> u32 {
        self.cols * self.nodes_per_router
    }

    /// Nodes per cabinet.
    pub fn nodes_per_cabinet(&self) -> u32 {
        self.nodes_per_chassis() * self.chassis_per_cabinet
    }

    /// Total chassis in the machine.
    pub fn total_chassis(&self) -> u32 {
        self.groups * self.rows
    }

    /// Global links connecting each (unordered) group pair.
    pub fn links_per_group_pair(&self) -> u32 {
        let endpoints = self.routers_per_group() * self.global_links_per_router;
        endpoints / (self.groups - 1)
    }

    /// Validate internal consistency. Returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        if self.groups < 2 {
            return Err("need at least 2 groups".into());
        }
        if self.rows == 0 || self.cols == 0 {
            return Err("rows/cols must be positive".into());
        }
        if self.nodes_per_router == 0 {
            return Err("nodes_per_router must be positive".into());
        }
        if self.chassis_per_cabinet == 0 || self.rows % self.chassis_per_cabinet != 0 {
            return Err(format!(
                "rows ({}) must be a multiple of chassis_per_cabinet ({})",
                self.rows, self.chassis_per_cabinet
            ));
        }
        let endpoints = self.routers_per_group() * self.global_links_per_router;
        if endpoints % (self.groups - 1) != 0 {
            return Err(format!(
                "global endpoints per group ({endpoints}) must divide evenly \
                 among {} peer groups",
                self.groups - 1
            ));
        }
        if self.links_per_group_pair() == 0 {
            return Err("every group pair needs at least one global link".into());
        }
        Ok(())
    }
}

impl ToKv for TopologyConfig {
    fn to_kv(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        kv(&mut out, "groups", self.groups);
        kv(&mut out, "rows", self.rows);
        kv(&mut out, "cols", self.cols);
        kv(&mut out, "nodes_per_router", self.nodes_per_router);
        kv(
            &mut out,
            "global_links_per_router",
            self.global_links_per_router,
        );
        kv(&mut out, "chassis_per_cabinet", self.chassis_per_cabinet);
        kv(&mut out, "terminal_bw", self.terminal_bw);
        kv(&mut out, "local_bw", self.local_bw);
        kv(&mut out, "global_bw", self.global_bw);
        kv(&mut out, "router_latency", self.router_latency);
        kv(&mut out, "local_latency", self.local_latency);
        kv(&mut out, "global_latency", self.global_latency);
        kv(&mut out, "terminal_latency", self.terminal_latency);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_shape_matches_paper() {
        let t = TopologyConfig::theta();
        t.validate().unwrap();
        assert_eq!(t.routers_per_group(), 96);
        assert_eq!(t.total_routers(), 864);
        assert_eq!(t.total_nodes(), 3456);
        assert_eq!(t.nodes_per_chassis(), 64);
        assert_eq!(t.nodes_per_cabinet(), 192);
        assert_eq!(t.total_chassis(), 54);
        // 96 routers * 4 links = 384 endpoints over 8 peers = 48 links/pair.
        assert_eq!(t.links_per_group_pair(), 48);
    }

    #[test]
    fn small_test_is_valid() {
        let t = TopologyConfig::small_test();
        t.validate().unwrap();
        assert_eq!(t.total_nodes(), 64);
        // 8 routers * 3 = 24 endpoints over 3 peers = 8 links/pair.
        assert_eq!(t.links_per_group_pair(), 8);
    }

    #[test]
    fn quick_is_valid() {
        let t = TopologyConfig::quick();
        t.validate().unwrap();
        assert_eq!(t.total_nodes(), 768);
        assert_eq!(t.links_per_group_pair(), 32);
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        let mut t = TopologyConfig::theta();
        t.groups = 1;
        assert!(t.validate().is_err());

        let mut t = TopologyConfig::theta();
        t.rows = 0;
        assert!(t.validate().is_err());

        let mut t = TopologyConfig::theta();
        t.nodes_per_router = 0;
        assert!(t.validate().is_err());

        let mut t = TopologyConfig::theta();
        t.chassis_per_cabinet = 4; // 6 rows not divisible by 4
        assert!(t.validate().is_err());

        let mut t = TopologyConfig::theta();
        t.groups = 8; // 384 endpoints not divisible by 7 peers
        assert!(t.validate().is_err());
    }

    #[test]
    fn config_echo_covers_every_field_once() {
        let t = TopologyConfig::theta();
        let kvs = t.to_kv();
        // 13 public fields, each exactly once, in declaration order.
        assert_eq!(kvs.len(), 13);
        let keys: std::collections::HashSet<_> = kvs.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys.len(), kvs.len(), "duplicate keys in config echo");
        assert_eq!(kvs[0], ("groups".to_string(), "9".to_string()));
        // Equal configs echo byte-identically; different configs differ.
        assert_eq!(t.kv_echo(), TopologyConfig::theta().kv_echo());
        assert_ne!(t.kv_echo(), TopologyConfig::quick().kv_echo());
    }
}
