//! Topology configuration, with the paper's Theta parameters as default.

use crate::arrangement::GlobalArrangement;
use dfly_engine::kv::{kv, ToKv};
use dfly_engine::{Bandwidth, Ns};

/// Shape and link parameters of a dragonfly machine.
///
/// [`TopologyConfig::theta`] is the exact configuration in the paper's
/// Section II: 9 groups x (6 x 16) routers x 4 nodes; 16 GiB/s terminal,
/// 5.25 GiB/s local, 4.69 GiB/s global links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyConfig {
    /// Number of groups.
    pub groups: u32,
    /// Router rows per group (a row is a chassis on Theta).
    pub rows: u32,
    /// Router columns per group.
    pub cols: u32,
    /// Compute nodes attached to each router.
    pub nodes_per_router: u32,
    /// Global link endpoints per router. Total global links per group pair
    /// is `rows * cols * global_links_per_router / (groups - 1)`.
    pub global_links_per_router: u32,
    /// Chassis (rows) per cabinet; Theta: 3.
    pub chassis_per_cabinet: u32,
    /// Terminal (node<->router) link bandwidth.
    pub terminal_bw: Bandwidth,
    /// Local (intra-group) link bandwidth.
    pub local_bw: Bandwidth,
    /// Global (inter-group) link bandwidth.
    pub global_bw: Bandwidth,
    /// Fixed per-hop router traversal latency.
    pub router_latency: Ns,
    /// Propagation latency of local links.
    pub local_latency: Ns,
    /// Propagation latency of global (optical) links.
    pub global_latency: Ns,
    /// Propagation latency of terminal links.
    pub terminal_latency: Ns,
    /// How global-link endpoints are assigned to routers within groups.
    /// [`GlobalArrangement::RoundRobin`] (the default) reproduces the
    /// historical wiring byte for byte.
    pub arrangement: GlobalArrangement,
}

impl TopologyConfig {
    /// The paper's Theta configuration (Section II).
    pub fn theta() -> TopologyConfig {
        TopologyConfig {
            groups: 9,
            rows: 6,
            cols: 16,
            nodes_per_router: 4,
            global_links_per_router: 4,
            chassis_per_cabinet: 3,
            terminal_bw: Bandwidth::from_gib_per_sec(16),
            local_bw: Bandwidth::from_gib_per_sec_hundredths(525),
            global_bw: Bandwidth::from_gib_per_sec_hundredths(469),
            // Aries-like latencies: ~100ns per router traversal, short
            // electrical local links, longer optical global links.
            router_latency: Ns(100),
            local_latency: Ns(30),
            global_latency: Ns(1500),
            terminal_latency: Ns(30),
            arrangement: GlobalArrangement::RoundRobin,
        }
    }

    /// A canonic `(p, a, h, g)` dragonfly (the standard parameterization
    /// of the dragonfly literature and caminos-lib): `g` groups of `a`
    /// routers each, `p` compute nodes and `h` global-link endpoints per
    /// router, with the `a` routers of a group connected all-to-all.
    ///
    /// Mapped onto the row/column layout as a single row of `a` routers,
    /// so the row links *are* the complete intra-group graph and every
    /// existing channel class, id formula, and audit applies unchanged.
    /// Link speeds and latencies default to Theta's; override fields as
    /// needed. Requires `a * h` divisible by `g - 1` (see
    /// [`TopologyConfig::validate`], which suggests the nearest valid `h`).
    pub fn canonical(p: u32, a: u32, h: u32, g: u32) -> TopologyConfig {
        TopologyConfig {
            groups: g,
            rows: 1,
            cols: a,
            nodes_per_router: p,
            global_links_per_router: h,
            chassis_per_cabinet: 1,
            ..TopologyConfig::theta()
        }
    }

    /// A miniature dragonfly (4 groups of 2x4 routers, 2 nodes/router =
    /// 64 nodes) for fast tests and doctests. Same link speeds as Theta.
    pub fn small_test() -> TopologyConfig {
        TopologyConfig {
            groups: 4,
            rows: 2,
            cols: 4,
            nodes_per_router: 2,
            global_links_per_router: 3,
            chassis_per_cabinet: 2,
            ..TopologyConfig::theta()
        }
    }

    /// A mid-size machine (6 groups of 4x8 routers, 4 nodes/router =
    /// 768 nodes) used by the `--quick` reproduction mode: big enough to
    /// show the placement/routing contrasts, ~4.5x fewer nodes than Theta.
    pub fn quick() -> TopologyConfig {
        TopologyConfig {
            groups: 6,
            rows: 4,
            cols: 8,
            nodes_per_router: 4,
            global_links_per_router: 5,
            chassis_per_cabinet: 2,
            ..TopologyConfig::theta()
        }
    }

    /// Routers per group.
    pub fn routers_per_group(&self) -> u32 {
        self.rows * self.cols
    }

    /// Total routers in the machine.
    pub fn total_routers(&self) -> u32 {
        self.groups * self.routers_per_group()
    }

    /// Total compute nodes in the machine.
    pub fn total_nodes(&self) -> u32 {
        self.total_routers() * self.nodes_per_router
    }

    /// Nodes per chassis (one router row).
    pub fn nodes_per_chassis(&self) -> u32 {
        self.cols * self.nodes_per_router
    }

    /// Nodes per cabinet.
    pub fn nodes_per_cabinet(&self) -> u32 {
        self.nodes_per_chassis() * self.chassis_per_cabinet
    }

    /// Total chassis in the machine.
    pub fn total_chassis(&self) -> u32 {
        self.groups * self.rows
    }

    /// Global links connecting each (unordered) group pair.
    pub fn links_per_group_pair(&self) -> u32 {
        let endpoints = self.routers_per_group() * self.global_links_per_router;
        endpoints / (self.groups - 1)
    }

    /// The nearest `global_links_per_router` value (for this shape) that
    /// spreads global endpoints evenly over the `groups - 1` peer groups.
    /// Ties between an equally-near smaller and larger value go to the
    /// larger (more path diversity). Returns the current value when it is
    /// already valid.
    pub fn nearest_valid_global_links(&self) -> u32 {
        let peers = self.groups.saturating_sub(1).max(1);
        let rpg = self.routers_per_group();
        let ok = |h: u32| h > 0 && (rpg * h) % peers == 0;
        let h = self.global_links_per_router;
        if ok(h) {
            return h;
        }
        for d in 1..=peers {
            if ok(h + d) {
                return h + d;
            }
            if h > d && ok(h - d) {
                return h - d;
            }
        }
        peers // rpg * peers is always divisible by peers
    }

    /// Validate internal consistency. Returns a human-readable error
    /// naming the offending field and its value.
    pub fn validate(&self) -> Result<(), String> {
        if self.groups < 2 {
            return Err(format!(
                "groups ({}) must be at least 2 — a dragonfly needs peers to wire globally",
                self.groups
            ));
        }
        if self.rows == 0 || self.cols == 0 {
            return Err(format!(
                "rows ({}) and cols ({}) must both be positive",
                self.rows, self.cols
            ));
        }
        if self.nodes_per_router == 0 {
            return Err(format!(
                "nodes_per_router ({}) must be positive",
                self.nodes_per_router
            ));
        }
        if self.chassis_per_cabinet == 0 || self.rows % self.chassis_per_cabinet != 0 {
            return Err(format!(
                "rows ({}) must be a positive multiple of chassis_per_cabinet ({})",
                self.rows, self.chassis_per_cabinet
            ));
        }
        let endpoints = self.routers_per_group() * self.global_links_per_router;
        if endpoints % (self.groups - 1) != 0 {
            return Err(format!(
                "global endpoints per group (rows*cols*global_links_per_router = \
                 {}*{}*{} = {endpoints}) must divide evenly among the {} peer \
                 groups; nearest valid global_links_per_router is {}",
                self.rows,
                self.cols,
                self.global_links_per_router,
                self.groups - 1,
                self.nearest_valid_global_links()
            ));
        }
        if self.links_per_group_pair() == 0 {
            return Err(format!(
                "global_links_per_router ({}) gives every group pair zero global \
                 links ({endpoints} endpoints over {} peers); every pair needs at \
                 least one",
                self.global_links_per_router,
                self.groups - 1
            ));
        }
        Ok(())
    }
}

impl ToKv for TopologyConfig {
    fn to_kv(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        kv(&mut out, "groups", self.groups);
        kv(&mut out, "rows", self.rows);
        kv(&mut out, "cols", self.cols);
        kv(&mut out, "nodes_per_router", self.nodes_per_router);
        kv(
            &mut out,
            "global_links_per_router",
            self.global_links_per_router,
        );
        kv(&mut out, "chassis_per_cabinet", self.chassis_per_cabinet);
        kv(&mut out, "terminal_bw", self.terminal_bw);
        kv(&mut out, "local_bw", self.local_bw);
        kv(&mut out, "global_bw", self.global_bw);
        kv(&mut out, "router_latency", self.router_latency);
        kv(&mut out, "local_latency", self.local_latency);
        kv(&mut out, "global_latency", self.global_latency);
        kv(&mut out, "terminal_latency", self.terminal_latency);
        // Emitted only when non-default so existing echoes (and the golden
        // CSVs embedding them) keep their exact bytes — the same contract
        // as the experiment-level `parallelism` key.
        if self.arrangement != GlobalArrangement::RoundRobin {
            kv(&mut out, "arrangement", self.arrangement.label());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_shape_matches_paper() {
        let t = TopologyConfig::theta();
        t.validate().unwrap();
        assert_eq!(t.routers_per_group(), 96);
        assert_eq!(t.total_routers(), 864);
        assert_eq!(t.total_nodes(), 3456);
        assert_eq!(t.nodes_per_chassis(), 64);
        assert_eq!(t.nodes_per_cabinet(), 192);
        assert_eq!(t.total_chassis(), 54);
        // 96 routers * 4 links = 384 endpoints over 8 peers = 48 links/pair.
        assert_eq!(t.links_per_group_pair(), 48);
    }

    #[test]
    fn small_test_is_valid() {
        let t = TopologyConfig::small_test();
        t.validate().unwrap();
        assert_eq!(t.total_nodes(), 64);
        // 8 routers * 3 = 24 endpoints over 3 peers = 8 links/pair.
        assert_eq!(t.links_per_group_pair(), 8);
    }

    #[test]
    fn quick_is_valid() {
        let t = TopologyConfig::quick();
        t.validate().unwrap();
        assert_eq!(t.total_nodes(), 768);
        assert_eq!(t.links_per_group_pair(), 32);
    }

    #[test]
    fn validate_rejects_bad_shapes_naming_field_and_value() {
        let mut t = TopologyConfig::theta();
        t.groups = 1;
        assert!(t.validate().unwrap_err().contains("groups (1)"));

        let mut t = TopologyConfig::theta();
        t.rows = 0;
        assert!(t.validate().unwrap_err().contains("rows (0)"));

        let mut t = TopologyConfig::theta();
        t.nodes_per_router = 0;
        assert!(t.validate().unwrap_err().contains("nodes_per_router (0)"));

        let mut t = TopologyConfig::theta();
        t.chassis_per_cabinet = 4; // 6 rows not divisible by 4
        let e = t.validate().unwrap_err();
        assert!(e.contains("rows (6)") && e.contains("chassis_per_cabinet (4)"));

        let mut t = TopologyConfig::theta();
        t.groups = 8; // 384 endpoints not divisible by 7 peers
        let e = t.validate().unwrap_err();
        assert!(e.contains("6*16*4 = 384") && e.contains("7 peer"), "{e}");
    }

    #[test]
    fn canonical_shape_and_divisibility_suggestion() {
        // (p=2, a=8, h=4, g=17): 8*4 = 32 endpoints over 16 peers = 2/pair.
        let t = TopologyConfig::canonical(2, 8, 4, 17);
        t.validate().unwrap();
        assert_eq!(t.routers_per_group(), 8);
        assert_eq!(t.total_nodes(), 272);
        assert_eq!(t.links_per_group_pair(), 2);
        assert_eq!(t.rows, 1, "canonic groups are a single all-to-all row");

        // a*h = 8*3 = 24 not divisible by g-1 = 16: rejected with the
        // nearest valid h named in the message.
        let bad = TopologyConfig::canonical(2, 8, 3, 17);
        let e = bad.validate().unwrap_err();
        assert_eq!(bad.nearest_valid_global_links(), 4);
        assert!(
            e.contains("global_links_per_router is 4"),
            "message must suggest the nearest valid h: {e}"
        );

        // Already-valid h is its own suggestion.
        assert_eq!(t.nearest_valid_global_links(), 4);
        // A case where the nearest fix is below the requested h:
        // a=3, g=10 needs 3h divisible by 9, i.e. h a multiple of 3.
        let low = TopologyConfig::canonical(2, 3, 4, 10);
        assert_eq!(low.nearest_valid_global_links(), 3);
    }

    #[test]
    fn config_echo_covers_every_field_once() {
        let t = TopologyConfig::theta();
        let kvs = t.to_kv();
        // 13 always-echoed fields, each exactly once, in declaration
        // order; `arrangement` appears only when non-default (14 fields
        // total) so historical echoes keep their bytes.
        assert_eq!(kvs.len(), 13);
        let keys: std::collections::HashSet<_> = kvs.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys.len(), kvs.len(), "duplicate keys in config echo");
        assert_eq!(kvs[0], ("groups".to_string(), "9".to_string()));
        // Equal configs echo byte-identically; different configs differ.
        assert_eq!(t.kv_echo(), TopologyConfig::theta().kv_echo());
        assert_ne!(t.kv_echo(), TopologyConfig::quick().kv_echo());
    }

    #[test]
    fn arrangement_key_only_echoed_when_non_default() {
        let mut t = TopologyConfig::theta();
        assert!(!t.kv_echo().contains("arrangement"));
        t.arrangement = GlobalArrangement::PalmTree;
        assert_eq!(t.to_kv().len(), 14);
        assert!(t.kv_echo().contains("arrangement = palm"));
        t.arrangement = GlobalArrangement::Random { seed: 3 };
        assert!(t.kv_echo().contains("arrangement = rand0x3"));
    }
}
