//! Dense integer identifiers for every entity in the machine.
//!
//! All ids are `u32` newtypes: the largest machine in the study has 3,456
//! nodes and ~29k directed channels, so `u32` is roomy while keeping the
//! simulator's per-packet state small (see the type-size guidance in the
//! Rust Performance Book).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// A dragonfly group (Theta: 9 groups of 96 routers).
    GroupId,
    "g"
);
id_type!(
    /// A router, indexed globally: `group * routers_per_group + row * cols + col`.
    RouterId,
    "r"
);
id_type!(
    /// A compute node, indexed globally: `router * nodes_per_router + slot`.
    NodeId,
    "n"
);
id_type!(
    /// A chassis: one row of 16 routers (Theta). Indexed globally.
    ChassisId,
    "ch"
);
id_type!(
    /// A cabinet: 3 chassis (Theta). Indexed globally.
    CabinetId,
    "cab"
);
id_type!(
    /// A directed channel (link direction). Dense over the whole machine.
    ChannelId,
    "L"
);

/// The class of a directed channel. Classes determine bandwidth, latency,
/// and virtual-channel buffer capacity (the paper: node VC 8 KiB, local VC
/// 8 KiB, global VC 16 KiB), and the traffic/saturation metrics are reported
/// per class ("local channels" vs "global channels").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelClass {
    /// Node -> router injection link.
    TerminalUp,
    /// Router -> node ejection link.
    TerminalDown,
    /// All-to-all link within a router row (green links in Fig. 1).
    LocalRow,
    /// All-to-all link within a router column (black links in Fig. 1).
    LocalCol,
    /// Inter-group optical link (blue links in Fig. 1).
    Global,
}

impl ChannelClass {
    /// Is this one of the two intra-group local classes?
    #[inline]
    pub fn is_local(self) -> bool {
        matches!(self, ChannelClass::LocalRow | ChannelClass::LocalCol)
    }

    /// Is this a router-to-router class (i.e. counted as a "hop")?
    #[inline]
    pub fn is_router_to_router(self) -> bool {
        matches!(
            self,
            ChannelClass::LocalRow | ChannelClass::LocalCol | ChannelClass::Global
        )
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ChannelClass::TerminalUp => "term-up",
            ChannelClass::TerminalDown => "term-down",
            ChannelClass::LocalRow => "local-row",
            ChannelClass::LocalCol => "local-col",
            ChannelClass::Global => "global",
        }
    }
}

/// One endpoint of a directed channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelEnd {
    /// A compute node (terminal channels only).
    Node(NodeId),
    /// A router.
    Router(RouterId),
}

impl ChannelEnd {
    /// The router at this end, if it is a router.
    pub fn router(self) -> Option<RouterId> {
        match self {
            ChannelEnd::Router(r) => Some(r),
            ChannelEnd::Node(_) => None,
        }
    }

    /// The node at this end, if it is a node.
    pub fn node(self) -> Option<NodeId> {
        match self {
            ChannelEnd::Node(n) => Some(n),
            ChannelEnd::Router(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes() {
        assert_eq!(GroupId(3).to_string(), "g3");
        assert_eq!(RouterId(42).to_string(), "r42");
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(ChassisId(1).to_string(), "ch1");
        assert_eq!(CabinetId(0).to_string(), "cab0");
        assert_eq!(ChannelId(99).to_string(), "L99");
    }

    #[test]
    fn class_predicates() {
        assert!(ChannelClass::LocalRow.is_local());
        assert!(ChannelClass::LocalCol.is_local());
        assert!(!ChannelClass::Global.is_local());
        assert!(!ChannelClass::TerminalUp.is_local());
        assert!(ChannelClass::Global.is_router_to_router());
        assert!(!ChannelClass::TerminalDown.is_router_to_router());
    }

    #[test]
    fn endpoint_accessors() {
        let e = ChannelEnd::Node(NodeId(5));
        assert_eq!(e.node(), Some(NodeId(5)));
        assert_eq!(e.router(), None);
        let e = ChannelEnd::Router(RouterId(9));
        assert_eq!(e.router(), Some(RouterId(9)));
        assert_eq!(e.node(), None);
    }

    #[test]
    fn ids_order_and_index() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(RouterId(17).index(), 17usize);
        assert_eq!(NodeId::from(4u32), NodeId(4));
    }
}
