//! # dfly-topology
//!
//! The Cray XC ("Cascade") dragonfly topology used by the ALCF Theta system,
//! exactly as configured in the paper's Figure 1:
//!
//! * 9 groups, each with 96 Aries routers arranged in a 6 x 16 grid;
//! * every row of 16 routers is connected all-to-all by *local row* links,
//!   every column of 6 routers all-to-all by *local column* links;
//! * each row of 16 routers forms a **chassis**; 3 chassis form a **cabinet**;
//! * routers connect to other groups via **global** links;
//! * 4 compute nodes attach to each router via **terminal** links.
//!
//! The exact Theta global cabling is not public, so global links are wired
//! deterministically: every group pair gets an equal share of parallel
//! links, whose router endpoints are assigned round-robin so each router
//! carries exactly `global_links_per_router` links and gateways are spread
//! uniformly over the router grid (see `DESIGN.md`, substitution table).
//!
//! All channels (directed links) are enumerated with dense integer ids and
//! arithmetic index formulas so the simulator's hot path never hashes.

#![warn(missing_docs)]

pub mod arrangement;
pub mod config;
pub mod ids;
pub mod paths;
pub mod topology;

pub use arrangement::GlobalArrangement;
pub use config::TopologyConfig;
pub use ids::{
    CabinetId, ChannelClass, ChannelEnd, ChannelId, ChassisId, GroupId, NodeId, RouterId,
};
pub use paths::{Path, RouteKind};
pub use topology::{ChannelInfo, Topology};
