//! Router-level path construction.
//!
//! A path is the ordered list of router-to-router channels a packet
//! traverses (terminal injection/ejection channels are added by the network
//! layer). Minimal paths follow the paper's Section III-C:
//!
//! * within a group: source router, at most one intermediate router when
//!   source and destination share neither row nor column, destination;
//! * across groups: local hops to a gateway holding a global link directly
//!   connected to the destination group, the global hop, then local hops.
//!
//! Non-minimal paths (used by adaptive routing) route minimally to a
//! randomly selected intermediate router anywhere in the machine, then
//! minimally to the destination (Valiant-style).

use crate::ids::{ChannelId, RouterId};
use crate::topology::Topology;
use dfly_engine::Xoshiro256;

/// Whether a path is minimal or detours through an intermediate router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteKind {
    /// Shortest path.
    Minimal,
    /// Valiant-style detour through a random intermediate router.
    NonMinimal,
}

/// A router-level path: the channels crossed between the source router and
/// the destination router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Ordered router-to-router channels.
    pub channels: Vec<ChannelId>,
    /// Minimal or non-minimal.
    pub kind: RouteKind,
}

impl Path {
    /// Number of router-to-router hops (the paper's "average hops" metric
    /// counts intermediate router traversals; equivalently, channels here).
    pub fn hops(&self) -> usize {
        self.channels.len()
    }
}

/// Append the (0, 1 or 2 hop) intra-group minimal path from `src` to `dst`
/// onto `out`. When both a row-first and a column-first two-hop route
/// exist, one is chosen uniformly at random — this matches hardware
/// behaviour where the two intermediate candidates are load-spread.
pub fn push_intra_group(
    topo: &Topology,
    src: RouterId,
    dst: RouterId,
    rng: &mut Xoshiro256,
    out: &mut Vec<ChannelId>,
) {
    debug_assert_eq!(topo.router_group(src), topo.router_group(dst));
    if src == dst {
        return;
    }
    let (g, src_row, src_col) = topo.router_coords(src);
    let (_, dst_row, dst_col) = topo.router_coords(dst);
    if src_row == dst_row {
        out.push(topo.row_channel(src, dst));
    } else if src_col == dst_col {
        out.push(topo.col_channel(src, dst));
    } else if rng.chance(0.5) {
        // Row first: (src_row, src_col) -> (src_row, dst_col) -> dst.
        let mid = topo.router_at(g, src_row, dst_col);
        out.push(topo.row_channel(src, mid));
        out.push(topo.col_channel(mid, dst));
    } else {
        // Column first: (src_row, src_col) -> (dst_row, src_col) -> dst.
        let mid = topo.router_at(g, dst_row, src_col);
        out.push(topo.col_channel(src, mid));
        out.push(topo.row_channel(mid, dst));
    }
}

/// Append a minimal path from `src` to `dst` (any groups) onto `out`.
pub fn push_minimal(
    topo: &Topology,
    src: RouterId,
    dst: RouterId,
    rng: &mut Xoshiro256,
    out: &mut Vec<ChannelId>,
) {
    let sg = topo.router_group(src);
    let dg = topo.router_group(dst);
    if sg == dg {
        push_intra_group(topo, src, dst, rng, out);
        return;
    }
    // Choose a gateway uniformly at random among the parallel links of the
    // group pair; this is the static load-spreading minimal routing the
    // CODES dragonfly-custom model applies per packet.
    let gws = topo.gateways(sg, dg);
    let &(gw_router, gw_channel) = rng.choose(gws);
    push_intra_group(topo, src, gw_router, rng, out);
    out.push(gw_channel);
    let entry = topo
        .channel(gw_channel)
        .dst
        .router()
        .expect("global channel ends at a router");
    push_intra_group(topo, entry, dst, rng, out);
}

/// A complete minimal path.
pub fn minimal_path(topo: &Topology, src: RouterId, dst: RouterId, rng: &mut Xoshiro256) -> Path {
    let mut channels = Vec::with_capacity(5);
    push_minimal(topo, src, dst, rng, &mut channels);
    Path {
        channels,
        kind: RouteKind::Minimal,
    }
}

/// A non-minimal path through the given intermediate router.
pub fn nonminimal_path(
    topo: &Topology,
    src: RouterId,
    intermediate: RouterId,
    dst: RouterId,
    rng: &mut Xoshiro256,
) -> Path {
    let mut channels = Vec::with_capacity(10);
    push_minimal(topo, src, intermediate, rng, &mut channels);
    push_minimal(topo, intermediate, dst, rng, &mut channels);
    Path {
        channels,
        kind: RouteKind::NonMinimal,
    }
}

/// Pick a uniformly random intermediate router (for non-minimal candidates).
pub fn random_intermediate(topo: &Topology, rng: &mut Xoshiro256) -> RouterId {
    RouterId(rng.next_below(topo.config().total_routers() as u64) as u32)
}

/// The maximum number of router-to-router hops any path produced by this
/// module can have: 2 local + 1 global + 2 local, twice (non-minimal).
/// The network layer sizes its virtual-channel count from this.
pub const MAX_ROUTER_HOPS: usize = 10;

/// Validate that a path is well-formed: consecutive channels chain
/// router-to-router from `src` to `dst`. Used by tests and debug assertions.
pub fn validate_path(topo: &Topology, src: RouterId, dst: RouterId, path: &Path) -> bool {
    let mut at = src;
    for &ch in &path.channels {
        let info = topo.channel(ch);
        if !info.class.is_router_to_router() {
            return false;
        }
        match info.src.router() {
            Some(r) if r == at => {}
            _ => return false,
        }
        at = info.dst.router().expect("router-to-router channel");
    }
    at == dst && path.channels.len() <= MAX_ROUTER_HOPS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TopologyConfig;
    use crate::ids::ChannelClass;

    fn small() -> Topology {
        Topology::build(TopologyConfig::small_test())
    }

    fn theta() -> Topology {
        Topology::build(TopologyConfig::theta())
    }

    #[test]
    fn same_router_path_is_empty() {
        let t = small();
        let mut rng = Xoshiro256::seed_from(1);
        let p = minimal_path(&t, RouterId(3), RouterId(3), &mut rng);
        assert_eq!(p.hops(), 0);
        assert!(validate_path(&t, RouterId(3), RouterId(3), &p));
    }

    #[test]
    fn same_row_is_one_hop() {
        let t = theta();
        let mut rng = Xoshiro256::seed_from(2);
        let src = t.router_at(crate::GroupId(0), 2, 3);
        let dst = t.router_at(crate::GroupId(0), 2, 9);
        let p = minimal_path(&t, src, dst, &mut rng);
        assert_eq!(p.hops(), 1);
        assert_eq!(t.channel(p.channels[0]).class, ChannelClass::LocalRow);
        assert!(validate_path(&t, src, dst, &p));
    }

    #[test]
    fn same_col_is_one_hop() {
        let t = theta();
        let mut rng = Xoshiro256::seed_from(3);
        let src = t.router_at(crate::GroupId(1), 0, 5);
        let dst = t.router_at(crate::GroupId(1), 4, 5);
        let p = minimal_path(&t, src, dst, &mut rng);
        assert_eq!(p.hops(), 1);
        assert_eq!(t.channel(p.channels[0]).class, ChannelClass::LocalCol);
    }

    #[test]
    fn diagonal_intra_group_is_two_hops_both_orders() {
        let t = theta();
        let src = t.router_at(crate::GroupId(0), 1, 2);
        let dst = t.router_at(crate::GroupId(0), 4, 10);
        let mut saw_row_first = false;
        let mut saw_col_first = false;
        let mut rng = Xoshiro256::seed_from(4);
        for _ in 0..64 {
            let p = minimal_path(&t, src, dst, &mut rng);
            assert_eq!(p.hops(), 2);
            assert!(validate_path(&t, src, dst, &p));
            match t.channel(p.channels[0]).class {
                ChannelClass::LocalRow => saw_row_first = true,
                ChannelClass::LocalCol => saw_col_first = true,
                other => panic!("unexpected class {other:?}"),
            }
        }
        assert!(saw_row_first && saw_col_first, "both orders should occur");
    }

    #[test]
    fn inter_group_minimal_has_exactly_one_global_hop() {
        let t = theta();
        let mut rng = Xoshiro256::seed_from(5);
        for i in 0..200u32 {
            let src = RouterId(rng.next_below(t.config().total_routers() as u64) as u32);
            let dst = RouterId(rng.next_below(t.config().total_routers() as u64) as u32);
            if t.router_group(src) == t.router_group(dst) {
                continue;
            }
            let p = minimal_path(&t, src, dst, &mut rng);
            let globals = p
                .channels
                .iter()
                .filter(|&&c| t.channel(c).class == ChannelClass::Global)
                .count();
            assert_eq!(globals, 1, "iteration {i}");
            assert!(p.hops() <= 5);
            assert!(validate_path(&t, src, dst, &p));
        }
    }

    #[test]
    fn nonminimal_paths_valid_and_bounded() {
        let t = theta();
        let mut rng = Xoshiro256::seed_from(6);
        for _ in 0..200 {
            let src = RouterId(rng.next_below(t.config().total_routers() as u64) as u32);
            let dst = RouterId(rng.next_below(t.config().total_routers() as u64) as u32);
            let inter = random_intermediate(&t, &mut rng);
            let p = nonminimal_path(&t, src, inter, dst, &mut rng);
            assert!(p.hops() <= MAX_ROUTER_HOPS);
            assert!(validate_path(&t, src, dst, &p));
            assert_eq!(p.kind, RouteKind::NonMinimal);
        }
    }

    #[test]
    fn nonminimal_at_least_as_long_as_minimal_on_average() {
        let t = theta();
        let mut rng = Xoshiro256::seed_from(7);
        let mut min_total = 0usize;
        let mut non_total = 0usize;
        for _ in 0..300 {
            let src = RouterId(rng.next_below(t.config().total_routers() as u64) as u32);
            let dst = RouterId(rng.next_below(t.config().total_routers() as u64) as u32);
            min_total += minimal_path(&t, src, dst, &mut rng).hops();
            let inter = random_intermediate(&t, &mut rng);
            non_total += nonminimal_path(&t, src, inter, dst, &mut rng).hops();
        }
        assert!(
            non_total > min_total,
            "nonminimal ({non_total}) should exceed minimal ({min_total})"
        );
    }

    #[test]
    fn minimal_gateway_choice_spreads_load() {
        // Repeated minimal routing between the same router pair should use
        // multiple distinct gateways.
        let t = theta();
        let mut rng = Xoshiro256::seed_from(8);
        let src = RouterId(0);
        let dst = RouterId(t.config().routers_per_group() * 3 + 17);
        let mut globals_used = std::collections::HashSet::new();
        for _ in 0..100 {
            let p = minimal_path(&t, src, dst, &mut rng);
            for &c in &p.channels {
                if t.channel(c).class == ChannelClass::Global {
                    globals_used.insert(c);
                }
            }
        }
        assert!(
            globals_used.len() > 10,
            "only {} gateways used",
            globals_used.len()
        );
    }

    #[test]
    fn small_topology_all_pairs_reachable_minimally() {
        let t = small();
        let mut rng = Xoshiro256::seed_from(9);
        let n = t.config().total_routers();
        for s in 0..n {
            for d in 0..n {
                let p = minimal_path(&t, RouterId(s), RouterId(d), &mut rng);
                assert!(validate_path(&t, RouterId(s), RouterId(d), &p));
                assert!(p.hops() <= 5);
            }
        }
    }

    #[test]
    fn random_intermediate_in_range() {
        let t = small();
        let mut rng = Xoshiro256::seed_from(10);
        for _ in 0..100 {
            let r = random_intermediate(&t, &mut rng);
            assert!(r.0 < t.config().total_routers());
        }
    }
}
