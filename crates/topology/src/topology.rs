//! Machine construction: entity numbering, channel enumeration, global
//! wiring, and gateway tables.

use crate::config::TopologyConfig;
use crate::ids::{
    CabinetId, ChannelClass, ChannelEnd, ChannelId, ChassisId, GroupId, NodeId, RouterId,
};
use dfly_engine::{Bandwidth, Ns};

/// Static description of one directed channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelInfo {
    /// The channel class (terminal / local row / local col / global).
    pub class: ChannelClass,
    /// Transmitting end.
    pub src: ChannelEnd,
    /// Receiving end.
    pub dst: ChannelEnd,
}

/// One undirected global link between two groups, with its two directed
/// channel ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalLink {
    /// Endpoint router in the lower-numbered group.
    pub a: RouterId,
    /// Endpoint router in the higher-numbered group.
    pub b: RouterId,
    /// Directed channel a -> b.
    pub ab: ChannelId,
    /// Directed channel b -> a.
    pub ba: ChannelId,
}

/// A fully constructed dragonfly machine.
///
/// Construction is deterministic: the same [`TopologyConfig`] always yields
/// the same wiring, which the study requires for config comparisons.
#[derive(Debug, Clone)]
pub struct Topology {
    cfg: TopologyConfig,
    channels: Vec<ChannelInfo>,
    global_links: Vec<GlobalLink>,
    /// `[src_group][dst_group]` -> (gateway router in src group, directed
    /// channel src->dst). Empty vec on the diagonal.
    gateways: Vec<Vec<Vec<(RouterId, ChannelId)>>>,
    /// `[router]` -> every outgoing global channel of that router with the
    /// group it lands in. Progressive adaptive routing re-evaluates its
    /// minimal/non-minimal decision over these at the gateway.
    router_globals: Vec<Vec<(ChannelId, GroupId)>>,
    // Channel-id arithmetic bases.
    base_term_down: u32,
    base_row: u32,
    base_col: u32,
    base_global: u32,
}

impl Topology {
    /// Build a machine. Panics if the config fails [`TopologyConfig::validate`].
    pub fn build(cfg: TopologyConfig) -> Topology {
        if let Err(e) = cfg.validate() {
            panic!("invalid topology config: {e}");
        }
        let n_nodes = cfg.total_nodes();
        let n_routers = cfg.total_routers();
        let row_per_router = cfg.cols - 1;
        let col_per_router = cfg.rows - 1;

        let base_term_down = n_nodes;
        let base_row = 2 * n_nodes;
        let base_col = base_row + n_routers * row_per_router;
        let base_global = base_col + n_routers * col_per_router;

        let mut channels = Vec::with_capacity(
            (base_global + cfg.groups * (cfg.groups - 1) * cfg.links_per_group_pair()) as usize,
        );

        // Terminal up: id = node.
        for node in 0..n_nodes {
            let router = node / cfg.nodes_per_router;
            channels.push(ChannelInfo {
                class: ChannelClass::TerminalUp,
                src: ChannelEnd::Node(NodeId(node)),
                dst: ChannelEnd::Router(RouterId(router)),
            });
        }
        // Terminal down: id = base_term_down + node.
        for node in 0..n_nodes {
            let router = node / cfg.nodes_per_router;
            channels.push(ChannelInfo {
                class: ChannelClass::TerminalDown,
                src: ChannelEnd::Router(RouterId(router)),
                dst: ChannelEnd::Node(NodeId(node)),
            });
        }
        // Local row: id = base_row + router*(cols-1) + rank(dst_col).
        for r in 0..n_routers {
            let (g, row, col) = decompose(&cfg, r);
            for dst_col in 0..cfg.cols {
                if dst_col == col {
                    continue;
                }
                let dst = compose(&cfg, g, row, dst_col);
                channels.push(ChannelInfo {
                    class: ChannelClass::LocalRow,
                    src: ChannelEnd::Router(RouterId(r)),
                    dst: ChannelEnd::Router(RouterId(dst)),
                });
            }
        }
        // Local col: id = base_col + router*(rows-1) + rank(dst_row).
        for r in 0..n_routers {
            let (g, row, col) = decompose(&cfg, r);
            for dst_row in 0..cfg.rows {
                if dst_row == row {
                    continue;
                }
                let dst = compose(&cfg, g, dst_row, col);
                channels.push(ChannelInfo {
                    class: ChannelClass::LocalCol,
                    src: ChannelEnd::Router(RouterId(r)),
                    dst: ChannelEnd::Router(RouterId(dst)),
                });
            }
        }

        // Global wiring: the configured arrangement plans which router in
        // each group terminates each link; iterating group pairs in
        // canonical order and links within a pair in order assigns each
        // router exactly `global_links_per_router` endpoints regardless
        // of the arrangement (see `GlobalArrangement::plan`). Channel ids
        // depend only on the iteration order, so every arrangement shares
        // the id arithmetic — and the default round-robin plan reproduces
        // the historical wiring byte for byte.
        let links_per_pair = cfg.links_per_group_pair();
        let rpg = cfg.routers_per_group();
        let plan = cfg.arrangement.plan(&cfg);
        let mut endpoints = plan.iter();
        let mut global_links = Vec::new();
        let mut gateways = vec![vec![Vec::new(); cfg.groups as usize]; cfg.groups as usize];
        let mut router_globals = vec![Vec::new(); n_routers as usize];

        let mut next_id = base_global;
        for ga in 0..cfg.groups {
            for gb in (ga + 1)..cfg.groups {
                for _ in 0..links_per_pair {
                    let &(la, lb) = endpoints.next().expect("arrangement plan too short");
                    let ra = RouterId(ga * rpg + la);
                    let rb = RouterId(gb * rpg + lb);
                    let ab = ChannelId(next_id);
                    let ba = ChannelId(next_id + 1);
                    next_id += 2;
                    channels.push(ChannelInfo {
                        class: ChannelClass::Global,
                        src: ChannelEnd::Router(ra),
                        dst: ChannelEnd::Router(rb),
                    });
                    channels.push(ChannelInfo {
                        class: ChannelClass::Global,
                        src: ChannelEnd::Router(rb),
                        dst: ChannelEnd::Router(ra),
                    });
                    global_links.push(GlobalLink {
                        a: ra,
                        b: rb,
                        ab,
                        ba,
                    });
                    gateways[ga as usize][gb as usize].push((ra, ab));
                    gateways[gb as usize][ga as usize].push((rb, ba));
                    router_globals[ra.index()].push((ab, GroupId(gb)));
                    router_globals[rb.index()].push((ba, GroupId(ga)));
                }
            }
        }
        debug_assert!(endpoints.next().is_none(), "arrangement plan too long");

        Topology {
            cfg,
            channels,
            global_links,
            gateways,
            router_globals,
            base_term_down,
            base_row,
            base_col,
            base_global,
        }
    }

    /// The configuration this machine was built from.
    pub fn config(&self) -> &TopologyConfig {
        &self.cfg
    }

    /// Total number of directed channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Static info for a channel.
    #[inline]
    pub fn channel(&self, id: ChannelId) -> &ChannelInfo {
        &self.channels[id.index()]
    }

    /// Iterate all channels with their ids.
    pub fn channels(&self) -> impl Iterator<Item = (ChannelId, &ChannelInfo)> {
        self.channels
            .iter()
            .enumerate()
            .map(|(i, c)| (ChannelId(i as u32), c))
    }

    /// All undirected global links.
    pub fn global_links(&self) -> &[GlobalLink] {
        &self.global_links
    }

    // ----- entity relations ---------------------------------------------

    /// The router a node attaches to.
    #[inline]
    pub fn node_router(&self, node: NodeId) -> RouterId {
        RouterId(node.0 / self.cfg.nodes_per_router)
    }

    /// The nodes attached to a router.
    pub fn router_nodes(&self, router: RouterId) -> impl Iterator<Item = NodeId> {
        let n = self.cfg.nodes_per_router;
        (router.0 * n..(router.0 + 1) * n).map(NodeId)
    }

    /// The group containing a router.
    #[inline]
    pub fn router_group(&self, router: RouterId) -> GroupId {
        GroupId(router.0 / self.cfg.routers_per_group())
    }

    /// The group containing a node.
    #[inline]
    pub fn node_group(&self, node: NodeId) -> GroupId {
        self.router_group(self.node_router(node))
    }

    /// (group, row, col) coordinates of a router.
    #[inline]
    pub fn router_coords(&self, router: RouterId) -> (GroupId, u32, u32) {
        let (g, row, col) = decompose(&self.cfg, router.0);
        (GroupId(g), row, col)
    }

    /// Router from (group, row, col).
    #[inline]
    pub fn router_at(&self, group: GroupId, row: u32, col: u32) -> RouterId {
        RouterId(compose(&self.cfg, group.0, row, col))
    }

    /// The chassis (router row) containing a router.
    #[inline]
    pub fn router_chassis(&self, router: RouterId) -> ChassisId {
        let (g, row, _) = decompose(&self.cfg, router.0);
        ChassisId(g * self.cfg.rows + row)
    }

    /// The chassis containing a node.
    #[inline]
    pub fn node_chassis(&self, node: NodeId) -> ChassisId {
        self.router_chassis(self.node_router(node))
    }

    /// The cabinet containing a node.
    #[inline]
    pub fn node_cabinet(&self, node: NodeId) -> CabinetId {
        let ch = self.node_chassis(node);
        CabinetId(ch.0 / self.cfg.chassis_per_cabinet)
    }

    /// All nodes in a chassis, in index order.
    pub fn chassis_nodes(&self, chassis: ChassisId) -> Vec<NodeId> {
        let g = chassis.0 / self.cfg.rows;
        let row = chassis.0 % self.cfg.rows;
        let mut out = Vec::with_capacity(self.cfg.nodes_per_chassis() as usize);
        for col in 0..self.cfg.cols {
            let r = RouterId(compose(&self.cfg, g, row, col));
            out.extend(self.router_nodes(r));
        }
        out
    }

    /// All nodes in a cabinet, in index order.
    pub fn cabinet_nodes(&self, cabinet: CabinetId) -> Vec<NodeId> {
        let first_chassis = cabinet.0 * self.cfg.chassis_per_cabinet;
        let mut out = Vec::with_capacity(self.cfg.nodes_per_cabinet() as usize);
        for c in first_chassis..first_chassis + self.cfg.chassis_per_cabinet {
            out.extend(self.chassis_nodes(ChassisId(c)));
        }
        out
    }

    /// Total cabinets in the machine.
    pub fn total_cabinets(&self) -> u32 {
        self.cfg.total_chassis() / self.cfg.chassis_per_cabinet
    }

    // ----- channel id arithmetic ------------------------------------------

    /// Injection channel of a node.
    #[inline]
    pub fn terminal_up(&self, node: NodeId) -> ChannelId {
        ChannelId(node.0)
    }

    /// Ejection channel to a node.
    #[inline]
    pub fn terminal_down(&self, node: NodeId) -> ChannelId {
        ChannelId(self.base_term_down + node.0)
    }

    /// The row link between two routers in the same group and row.
    /// Panics in debug builds if they aren't row peers.
    #[inline]
    pub fn row_channel(&self, src: RouterId, dst: RouterId) -> ChannelId {
        let (_, _, src_col) = decompose(&self.cfg, src.0);
        let (_, _, dst_col) = decompose(&self.cfg, dst.0);
        debug_assert_ne!(src_col, dst_col);
        let rank = if dst_col < src_col {
            dst_col
        } else {
            dst_col - 1
        };
        ChannelId(self.base_row + src.0 * (self.cfg.cols - 1) + rank)
    }

    /// The column link between two routers in the same group and column.
    #[inline]
    pub fn col_channel(&self, src: RouterId, dst: RouterId) -> ChannelId {
        let (_, src_row, _) = decompose(&self.cfg, src.0);
        let (_, dst_row, _) = decompose(&self.cfg, dst.0);
        debug_assert_ne!(src_row, dst_row);
        let rank = if dst_row < src_row {
            dst_row
        } else {
            dst_row - 1
        };
        ChannelId(self.base_col + src.0 * (self.cfg.rows - 1) + rank)
    }

    /// Gateways from `src_group` to `dst_group`: (router in src group,
    /// directed global channel). Uniformly spread over the group's routers.
    #[inline]
    pub fn gateways(&self, src_group: GroupId, dst_group: GroupId) -> &[(RouterId, ChannelId)] {
        &self.gateways[src_group.index()][dst_group.index()]
    }

    /// The first channel id of the global class (useful for metrics layout).
    pub fn first_global_channel(&self) -> ChannelId {
        ChannelId(self.base_global)
    }

    /// Every outgoing global channel of a router, with the group each one
    /// lands in. Exactly `global_links_per_router` entries for every
    /// router, in link-construction order. Progressive adaptive routing
    /// scans these to re-evaluate its decision at the gateway.
    #[inline]
    pub fn router_global_channels(&self, router: RouterId) -> &[(ChannelId, GroupId)] {
        &self.router_globals[router.index()]
    }

    // ----- per-class link parameters --------------------------------------

    /// Bandwidth of a channel class.
    pub fn class_bandwidth(&self, class: ChannelClass) -> Bandwidth {
        match class {
            ChannelClass::TerminalUp | ChannelClass::TerminalDown => self.cfg.terminal_bw,
            ChannelClass::LocalRow | ChannelClass::LocalCol => self.cfg.local_bw,
            ChannelClass::Global => self.cfg.global_bw,
        }
    }

    /// Propagation latency of a channel class (link flight time; the
    /// router traversal latency is separate).
    pub fn class_latency(&self, class: ChannelClass) -> Ns {
        match class {
            ChannelClass::TerminalUp | ChannelClass::TerminalDown => self.cfg.terminal_latency,
            ChannelClass::LocalRow | ChannelClass::LocalCol => self.cfg.local_latency,
            ChannelClass::Global => self.cfg.global_latency,
        }
    }
}

#[inline]
fn decompose(cfg: &TopologyConfig, router: u32) -> (u32, u32, u32) {
    let rpg = cfg.routers_per_group();
    let g = router / rpg;
    let local = router % rpg;
    (g, local / cfg.cols, local % cfg.cols)
}

#[inline]
fn compose(cfg: &TopologyConfig, group: u32, row: u32, col: u32) -> u32 {
    group * cfg.routers_per_group() + row * cfg.cols + col
}

#[cfg(test)]
mod tests {
    use super::*;

    fn theta() -> Topology {
        Topology::build(TopologyConfig::theta())
    }

    fn small() -> Topology {
        Topology::build(TopologyConfig::small_test())
    }

    #[test]
    fn channel_counts_match_formula() {
        let t = theta();
        let cfg = t.config();
        let n = cfg.total_nodes();
        let r = cfg.total_routers();
        let expected = 2 * n                         // terminal up+down
            + r * (cfg.cols - 1)                     // rows
            + r * (cfg.rows - 1)                     // cols
            + cfg.groups * (cfg.groups - 1) / 2 * cfg.links_per_group_pair() * 2; // global
        assert_eq!(t.channel_count(), expected as usize);
    }

    #[test]
    fn every_router_has_exact_global_degree() {
        for t in [theta(), small()] {
            let mut degree = vec![0u32; t.config().total_routers() as usize];
            for link in t.global_links() {
                degree[link.a.index()] += 1;
                degree[link.b.index()] += 1;
            }
            for (i, &d) in degree.iter().enumerate() {
                assert_eq!(
                    d,
                    t.config().global_links_per_router,
                    "router {i} has degree {d}"
                );
            }
        }
    }

    #[test]
    fn gateways_cover_all_group_pairs() {
        let t = theta();
        let g = t.config().groups;
        for a in 0..g {
            for b in 0..g {
                let gws = t.gateways(GroupId(a), GroupId(b));
                if a == b {
                    assert!(gws.is_empty());
                } else {
                    assert_eq!(gws.len() as u32, t.config().links_per_group_pair());
                    for &(router, ch) in gws {
                        assert_eq!(t.router_group(router), GroupId(a));
                        let info = t.channel(ch);
                        assert_eq!(info.class, ChannelClass::Global);
                        assert_eq!(info.src.router(), Some(router));
                        let dst = info.dst.router().unwrap();
                        assert_eq!(t.router_group(dst), GroupId(b));
                    }
                }
            }
        }
    }

    #[test]
    fn gateway_spread_is_uniform_over_routers() {
        // No single router should be gateway for a disproportionate share
        // of any one destination group.
        let t = theta();
        let gws = t.gateways(GroupId(0), GroupId(5));
        let mut per_router = std::collections::HashMap::new();
        for &(r, _) in gws {
            *per_router.entry(r).or_insert(0u32) += 1;
        }
        // 48 links over 96 routers: no router should carry more than 2.
        assert!(per_router.values().all(|&c| c <= 2));
        assert!(per_router.len() >= 24, "gateways too concentrated");
    }

    #[test]
    fn row_channel_arithmetic_agrees_with_table() {
        for t in [small(), theta()] {
            let cfg = t.config().clone();
            for r in 0..cfg.total_routers() {
                let src = RouterId(r);
                let (g, row, col) = t.router_coords(src);
                for dst_col in 0..cfg.cols {
                    if dst_col == col {
                        continue;
                    }
                    let dst = t.router_at(g, row, dst_col);
                    let id = t.row_channel(src, dst);
                    let info = t.channel(id);
                    assert_eq!(info.class, ChannelClass::LocalRow);
                    assert_eq!(info.src.router(), Some(src));
                    assert_eq!(info.dst.router(), Some(dst));
                }
            }
        }
    }

    #[test]
    fn col_channel_arithmetic_agrees_with_table() {
        let t = small();
        let cfg = t.config().clone();
        for r in 0..cfg.total_routers() {
            let src = RouterId(r);
            let (g, row, col) = t.router_coords(src);
            for dst_row in 0..cfg.rows {
                if dst_row == row {
                    continue;
                }
                let dst = t.router_at(g, dst_row, col);
                let id = t.col_channel(src, dst);
                let info = t.channel(id);
                assert_eq!(info.class, ChannelClass::LocalCol);
                assert_eq!(info.src.router(), Some(src));
                assert_eq!(info.dst.router(), Some(dst));
            }
        }
    }

    #[test]
    fn terminal_channels_connect_node_and_home_router() {
        let t = small();
        for n in 0..t.config().total_nodes() {
            let node = NodeId(n);
            let up = t.channel(t.terminal_up(node));
            assert_eq!(up.class, ChannelClass::TerminalUp);
            assert_eq!(up.src.node(), Some(node));
            assert_eq!(up.dst.router(), Some(t.node_router(node)));
            let down = t.channel(t.terminal_down(node));
            assert_eq!(down.class, ChannelClass::TerminalDown);
            assert_eq!(down.src.router(), Some(t.node_router(node)));
            assert_eq!(down.dst.node(), Some(node));
        }
    }

    #[test]
    fn entity_relations_consistent() {
        let t = theta();
        let node = NodeId(1234);
        let router = t.node_router(node);
        assert!(t.router_nodes(router).any(|n| n == node));
        let (g, row, col) = t.router_coords(router);
        assert_eq!(t.router_at(g, row, col), router);
        assert_eq!(t.node_group(node), g);
        let chassis = t.node_chassis(node);
        assert!(t.chassis_nodes(chassis).contains(&node));
        let cab = t.node_cabinet(node);
        assert!(t.cabinet_nodes(cab).contains(&node));
    }

    #[test]
    fn chassis_and_cabinet_sizes() {
        let t = theta();
        assert_eq!(t.chassis_nodes(ChassisId(0)).len(), 64);
        assert_eq!(t.cabinet_nodes(CabinetId(0)).len(), 192);
        assert_eq!(t.total_cabinets(), 18);
        // A cabinet's nodes are the union of its chassis' nodes
        // (Theta: 3 chassis per cabinet, so cabinet 3 = chassis 9..12).
        let cab: std::collections::HashSet<_> = t.cabinet_nodes(CabinetId(3)).into_iter().collect();
        for c in 9..12 {
            for n in t.chassis_nodes(ChassisId(c)) {
                assert!(cab.contains(&n));
            }
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let a = theta();
        let b = theta();
        assert_eq!(a.channel_count(), b.channel_count());
        for (id, info) in a.channels() {
            assert_eq!(info, b.channel(id));
        }
    }

    #[test]
    fn class_parameters() {
        let t = theta();
        assert_eq!(
            t.class_bandwidth(ChannelClass::TerminalUp),
            Bandwidth::from_gib_per_sec(16)
        );
        assert_eq!(
            t.class_bandwidth(ChannelClass::LocalRow),
            Bandwidth::from_gib_per_sec_hundredths(525)
        );
        assert_eq!(
            t.class_bandwidth(ChannelClass::Global),
            Bandwidth::from_gib_per_sec_hundredths(469)
        );
        assert!(t.class_latency(ChannelClass::Global) > t.class_latency(ChannelClass::LocalRow));
    }

    #[test]
    fn router_global_channels_cover_every_link() {
        for t in [theta(), small()] {
            for r in 0..t.config().total_routers() {
                let globals = t.router_global_channels(RouterId(r));
                assert_eq!(globals.len() as u32, t.config().global_links_per_router);
                for &(ch, dst_group) in globals {
                    let info = t.channel(ch);
                    assert_eq!(info.class, ChannelClass::Global);
                    assert_eq!(info.src.router(), Some(RouterId(r)));
                    let dst = info.dst.router().unwrap();
                    assert_eq!(t.router_group(dst), dst_group);
                    assert_ne!(dst_group, t.router_group(RouterId(r)));
                }
            }
        }
    }

    #[test]
    fn arrangements_share_id_arithmetic_and_invariants() {
        use crate::arrangement::GlobalArrangement;
        let mut shapes = vec![TopologyConfig::small_test()];
        shapes.push(TopologyConfig::canonical(2, 4, 2, 5));
        for base in shapes {
            for arr in [
                GlobalArrangement::RoundRobin,
                GlobalArrangement::Consecutive,
                GlobalArrangement::PalmTree,
                GlobalArrangement::Random { seed: 99 },
            ] {
                let mut cfg = base.clone();
                cfg.arrangement = arr;
                let t = Topology::build(cfg);
                // Same channel count and class layout as the default.
                assert_eq!(
                    t.first_global_channel().0,
                    Topology::build(base.clone()).first_global_channel().0
                );
                // Every ordered group pair fully connected.
                for a in 0..t.config().groups {
                    for b in 0..t.config().groups {
                        let gws = t.gateways(GroupId(a), GroupId(b));
                        if a == b {
                            assert!(gws.is_empty());
                        } else {
                            assert_eq!(gws.len() as u32, t.config().links_per_group_pair());
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid topology config")]
    fn build_rejects_invalid() {
        let mut cfg = TopologyConfig::theta();
        cfg.groups = 1;
        let _ = Topology::build(cfg);
    }
}
