//! Property tests over topology construction and path validity for
//! arbitrary (valid) machine shapes — not just the Theta and test
//! configurations. Runs on the in-tree harness (`dfly_engine::proptest`)
//! — no external crates.

use dfly_engine::proptest::{check, Config};
use dfly_engine::Xoshiro256;
use dfly_topology::{paths, ChannelClass, GroupId, RouterId, Topology, TopologyConfig};

/// Generator: small-but-varied valid configs. Global endpoints must divide
/// evenly among peer groups, so pick `global_links_per_router` as a
/// multiple of `(groups - 1) / gcd(rows * cols, groups - 1)`.
fn arb_config(rng: &mut Xoshiro256) -> TopologyConfig {
    let groups = rng.range_inclusive(2, 5) as u32;
    let rows = rng.range_inclusive(1, 3) as u32;
    let cols = rng.range_inclusive(2, 5) as u32;
    let npr = rng.range_inclusive(1, 2) as u32;
    let rpg = rows * cols;
    let peers = groups - 1;
    let g = gcd(rpg, peers);
    let step = peers / g;
    let mut cfg = TopologyConfig::theta();
    cfg.groups = groups;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.nodes_per_router = npr;
    cfg.global_links_per_router = step.max(1);
    cfg.chassis_per_cabinet = 1;
    cfg
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[test]
fn arbitrary_configs_build_consistently() {
    check(
        "arbitrary_configs_build_consistently",
        &Config::with_cases(48),
        arb_config,
        |cfg| {
            cfg.validate().map_err(|e| format!("{e} for {cfg:?}"))?;
            let topo = Topology::build(cfg.clone());

            // Channel endpoints are mutually consistent.
            for (id, info) in topo.channels() {
                match info.class {
                    ChannelClass::TerminalUp => {
                        let node = info.src.node().expect("src node");
                        if topo.terminal_up(node) != id {
                            return Err(format!("terminal_up mismatch for {node}"));
                        }
                        if info.dst.router() != Some(topo.node_router(node)) {
                            return Err(format!("terminal_up dst mismatch for {node}"));
                        }
                    }
                    ChannelClass::TerminalDown => {
                        let node = info.dst.node().expect("dst node");
                        if topo.terminal_down(node) != id {
                            return Err(format!("terminal_down mismatch for {node}"));
                        }
                    }
                    ChannelClass::LocalRow | ChannelClass::LocalCol => {
                        let s = info.src.router().expect("router");
                        let d = info.dst.router().expect("router");
                        if topo.router_group(s) != topo.router_group(d) {
                            return Err(format!("local link {s}->{d} crosses groups"));
                        }
                        if s == d {
                            return Err(format!("local self-link at {s}"));
                        }
                    }
                    ChannelClass::Global => {
                        let s = info.src.router().expect("router");
                        let d = info.dst.router().expect("router");
                        if topo.router_group(s) == topo.router_group(d) {
                            return Err(format!("global link {s}->{d} inside one group"));
                        }
                    }
                }
            }

            // Every router carries exactly the configured global degree.
            let mut degree = vec![0u32; cfg.total_routers() as usize];
            for link in topo.global_links() {
                degree[link.a.index()] += 1;
                degree[link.b.index()] += 1;
            }
            for (r, &d) in degree.iter().enumerate() {
                if d != cfg.global_links_per_router {
                    return Err(format!(
                        "router {r} has global degree {d}, expected {}",
                        cfg.global_links_per_router
                    ));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn minimal_paths_valid_on_arbitrary_configs() {
    check(
        "minimal_paths_valid_on_arbitrary_configs",
        &Config::with_cases(48),
        |rng| (arb_config(rng), rng.next_u64()),
        |(cfg, seed)| {
            let topo = Topology::build(cfg.clone());
            let mut rng = Xoshiro256::seed_from(*seed);
            let n = cfg.total_routers() as u64;
            for _ in 0..30 {
                let s = RouterId(rng.next_below(n) as u32);
                let d = RouterId(rng.next_below(n) as u32);
                let p = paths::minimal_path(&topo, s, d, &mut rng);
                if !paths::validate_path(&topo, s, d, &p) {
                    return Err(format!("invalid path {s}->{d}"));
                }
                if p.hops() > 5 {
                    return Err(format!("path {s}->{d} has {} hops", p.hops()));
                }
                // Minimal inter-group paths carry exactly one global hop.
                if topo.router_group(s) != topo.router_group(d) {
                    let globals = p
                        .channels
                        .iter()
                        .filter(|&&c| topo.channel(c).class == ChannelClass::Global)
                        .count();
                    if globals != 1 {
                        return Err(format!("path {s}->{d} has {globals} global hops"));
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn gateways_complete_on_arbitrary_configs() {
    check(
        "gateways_complete_on_arbitrary_configs",
        &Config::with_cases(48),
        arb_config,
        |cfg| {
            let topo = Topology::build(cfg.clone());
            for a in 0..cfg.groups {
                for b in 0..cfg.groups {
                    if a != b {
                        let gws = topo.gateways(GroupId(a), GroupId(b));
                        if gws.len() as u32 != cfg.links_per_group_pair() {
                            return Err(format!(
                                "{} gateways g{a}->g{b}, expected {}",
                                gws.len(),
                                cfg.links_per_group_pair()
                            ));
                        }
                    }
                }
            }
            Ok(())
        },
    );
}
