//! Property tests over topology construction and path validity for
//! arbitrary (valid) machine shapes — not just the Theta and test
//! configurations.

use dfly_engine::Xoshiro256;
use dfly_topology::{paths, ChannelClass, GroupId, RouterId, Topology, TopologyConfig};
use proptest::prelude::*;

/// Strategy: small-but-varied valid configs. Global endpoints must divide
/// evenly among peer groups, so pick `global_links_per_router` as a
/// multiple of `(groups - 1) / gcd(rows * cols, groups - 1)`.
fn arb_config() -> impl Strategy<Value = TopologyConfig> {
    (2u32..6, 1u32..4, 2u32..6, 1u32..3).prop_map(|(groups, rows, cols, npr)| {
        let rpg = rows * cols;
        let peers = groups - 1;
        let g = gcd(rpg, peers);
        let step = peers / g;
        let mut cfg = TopologyConfig::theta();
        cfg.groups = groups;
        cfg.rows = rows;
        cfg.cols = cols;
        cfg.nodes_per_router = npr;
        cfg.global_links_per_router = step.max(1);
        cfg.chassis_per_cabinet = 1;
        cfg
    })
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_configs_build_consistently(cfg in arb_config()) {
        prop_assert!(cfg.validate().is_ok(), "{cfg:?}");
        let topo = Topology::build(cfg.clone());

        // Channel endpoints are mutually consistent.
        for (id, info) in topo.channels() {
            match info.class {
                ChannelClass::TerminalUp => {
                    let node = info.src.node().expect("src node");
                    prop_assert_eq!(topo.terminal_up(node), id);
                    prop_assert_eq!(info.dst.router(), Some(topo.node_router(node)));
                }
                ChannelClass::TerminalDown => {
                    let node = info.dst.node().expect("dst node");
                    prop_assert_eq!(topo.terminal_down(node), id);
                }
                ChannelClass::LocalRow | ChannelClass::LocalCol => {
                    let s = info.src.router().expect("router");
                    let d = info.dst.router().expect("router");
                    prop_assert_eq!(topo.router_group(s), topo.router_group(d));
                    prop_assert_ne!(s, d);
                }
                ChannelClass::Global => {
                    let s = info.src.router().expect("router");
                    let d = info.dst.router().expect("router");
                    prop_assert_ne!(topo.router_group(s), topo.router_group(d));
                }
            }
        }

        // Every router carries exactly the configured global degree.
        let mut degree = vec![0u32; cfg.total_routers() as usize];
        for link in topo.global_links() {
            degree[link.a.index()] += 1;
            degree[link.b.index()] += 1;
        }
        for &d in &degree {
            prop_assert_eq!(d, cfg.global_links_per_router);
        }
    }

    #[test]
    fn minimal_paths_valid_on_arbitrary_configs(cfg in arb_config(), seed in any::<u64>()) {
        let topo = Topology::build(cfg.clone());
        let mut rng = Xoshiro256::seed_from(seed);
        let n = cfg.total_routers() as u64;
        for _ in 0..30 {
            let s = RouterId(rng.next_below(n) as u32);
            let d = RouterId(rng.next_below(n) as u32);
            let p = paths::minimal_path(&topo, s, d, &mut rng);
            prop_assert!(paths::validate_path(&topo, s, d, &p));
            prop_assert!(p.hops() <= 5);
            // Minimal inter-group paths carry exactly one global hop.
            if topo.router_group(s) != topo.router_group(d) {
                let globals = p.channels.iter()
                    .filter(|&&c| topo.channel(c).class == ChannelClass::Global)
                    .count();
                prop_assert_eq!(globals, 1);
            }
        }
    }

    #[test]
    fn gateways_complete_on_arbitrary_configs(cfg in arb_config()) {
        let topo = Topology::build(cfg.clone());
        for a in 0..cfg.groups {
            for b in 0..cfg.groups {
                if a != b {
                    let gws = topo.gateways(GroupId(a), GroupId(b));
                    prop_assert_eq!(gws.len() as u32, cfg.links_per_group_pair());
                }
            }
        }
    }
}
