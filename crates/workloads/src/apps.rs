//! Synthetic generators for the three representative applications.
//!
//! Each generator reproduces the communication *structure* the paper
//! documents (Figure 2 and Section III-A); message sizes carry a
//! `msg_scale` multiplier for the Figure 7 sensitivity study.

use crate::trace::{JobTrace, Phase, RankProgram, SendOp};
use dfly_engine::Xoshiro256;

/// Which miniapp to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Crystal Router (Nek5000 communication kernel).
    CrystalRouter,
    /// Fill Boundary (BoxLib ghost-cell exchange).
    FillBoundary,
    /// Algebraic MultiGrid solver (BoomerAMG-derived).
    Amg,
}

impl AppKind {
    /// Paper abbreviation.
    pub fn label(self) -> &'static str {
        match self {
            AppKind::CrystalRouter => "CR",
            AppKind::FillBoundary => "FB",
            AppKind::Amg => "AMG",
        }
    }

    /// The rank count the paper uses for this app.
    pub fn paper_ranks(self) -> u32 {
        match self {
            AppKind::CrystalRouter => 1000,
            AppKind::FillBoundary => 1000,
            AppKind::Amg => 1728,
        }
    }
}

/// Full workload specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// The application.
    pub kind: AppKind,
    /// Number of MPI ranks (one rank per node, as in the paper).
    pub ranks: u32,
    /// Message-size multiplier (1.0 = the paper's original loads).
    pub msg_scale: f64,
    /// Seed for size jitter and the scattered many-to-many components.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's configuration of an app at scale 1.0.
    pub fn paper(kind: AppKind) -> WorkloadSpec {
        WorkloadSpec {
            kind,
            ranks: kind.paper_ranks(),
            msg_scale: 1.0,
            seed: 0xD24A_60F1,
        }
    }
}

/// Generate the trace for a workload spec.
pub fn generate(spec: &WorkloadSpec) -> JobTrace {
    assert!(spec.ranks >= 2, "need at least 2 ranks");
    assert!(spec.msg_scale > 0.0, "msg_scale must be positive");
    let mut rng = Xoshiro256::seed_from(spec.seed);
    let trace = match spec.kind {
        AppKind::CrystalRouter => crystal_router(spec, &mut rng),
        AppKind::FillBoundary => fill_boundary(spec, &mut rng),
        AppKind::Amg => amg(spec, &mut rng),
    };
    debug_assert!(trace.validate().is_ok());
    trace
}

fn scaled(bytes: f64, scale: f64) -> u64 {
    (bytes * scale).max(1.0) as u64
}

/// Crystal Router: `ceil(log2(n))` stages of hypercube-style pairwise
/// many-to-many exchange at a near-constant ~190 KB per transfer, plus
/// neighborhood traffic (a substantial share of CR communication happens
/// between nearby ranks).
fn crystal_router(spec: &WorkloadSpec, rng: &mut Xoshiro256) -> JobTrace {
    let n = spec.ranks;
    let stages = (32 - (n - 1).leading_zeros()) as usize; // ceil(log2 n)
    let mut programs = vec![RankProgram::default(); n as usize];
    for r in 0..n {
        for d in 0..stages {
            let mut phase = Phase::default();
            // Hypercube partner where it exists; a shift-exchange partner
            // otherwise (non-power-of-two rank counts), so every stage
            // carries the same load — CR's load is "relatively constant".
            let xor_partner = r ^ (1 << d);
            let partner = if xor_partner < n {
                xor_partner
            } else {
                (r + (1 << d)) % n
            };
            if partner != r {
                // ~190 KB with +-5% jitter.
                let jitter = 1.0 + 0.05 * (rng.next_f64() * 2.0 - 1.0);
                let bytes = scaled(190.0 * 1024.0 * jitter, spec.msg_scale);
                phase.sends.push(SendOp {
                    peer: partner,
                    bytes,
                });
            }
            // Neighborhood component: smaller transfers to ranks +-1, +-2.
            for off in [1i64, -1, 2, -2] {
                let peer = (r as i64 + off).rem_euclid(n as i64) as u32;
                if peer != r {
                    let bytes = scaled(24.0 * 1024.0, spec.msg_scale);
                    phase.sends.push(SendOp { peer, bytes });
                }
            }
            programs[r as usize].phases.push(phase);
        }
    }
    JobTrace { programs }
}

/// Fill Boundary: 3-D block decomposition with periodic boundaries. Every
/// iteration each rank exchanges halos with its 6 grid neighbors at a
/// strongly fluctuating size (100 KB – 2560 KB), plus a scattered
/// many-to-many component across the rank set.
fn fill_boundary(spec: &WorkloadSpec, rng: &mut Xoshiro256) -> JobTrace {
    let n = spec.ranks;
    let dims = cube_dims(n);
    let iterations = 8;
    let mut programs = vec![RankProgram::default(); n as usize];
    for iter in 0..iterations {
        // The per-iteration base load fluctuates over a wide range; a
        // log-uniform draw spans the paper's 100 KB..2560 KB band. The
        // iteration's draw is shared by all ranks (the whole domain swaps
        // ghost cells of the same refinement level at once), with
        // per-message jitter on top.
        let ratio: f64 = 2560.0 / 100.0;
        let base = 100.0 * 1024.0 * ratio.powf(iter_fluct(iter, iterations, rng));
        for r in 0..n {
            let mut phase = Phase::default();
            // `base` is the rank's total halo load this iteration
            // (Figure 2(e)'s per-rank message load, 100 KB..2560 KB),
            // split across the six neighbors.
            for peer in neighbors_3d(r, dims) {
                let jitter = 0.8 + 0.4 * rng.next_f64();
                phase.sends.push(SendOp {
                    peer,
                    bytes: scaled(base / 6.0 * jitter, spec.msg_scale),
                });
            }
            // Scattered many-to-many: a few small messages to random ranks.
            for _ in 0..2 {
                let peer = rng.next_below(n as u64) as u32;
                if peer != r {
                    phase.sends.push(SendOp {
                        peer,
                        bytes: scaled(16.0 * 1024.0, spec.msg_scale),
                    });
                }
            }
            programs[r as usize].phases.push(phase);
        }
    }
    JobTrace { programs }
}

/// A deterministic but strongly fluctuating per-iteration level in [0, 1]:
/// alternates low/high with random modulation, giving the load swings in
/// the paper's Figure 2(e).
fn iter_fluct(iter: usize, total: usize, rng: &mut Xoshiro256) -> f64 {
    let saw = (iter % 3) as f64 / 2.0; // 0, .5, 1, 0, ...
    let noise = rng.next_f64() * 0.3;
    let _ = total;
    (0.7 * saw + noise).clamp(0.0, 1.0)
}

/// AMG: three solve cycles (the paper's three load surges), each a V-cycle
/// over multigrid levels. At level l every rank exchanges with up to six
/// 3-D grid neighbors (non-periodic: boundary ranks have fewer) at a size
/// that halves per level from the 75 KB peak.
fn amg(spec: &WorkloadSpec, rng: &mut Xoshiro256) -> JobTrace {
    let n = spec.ranks;
    let dims = cube_dims(n);
    let cycles = 3;
    let levels = 6;
    let mut programs = vec![RankProgram::default(); n as usize];
    for _cycle in 0..cycles {
        // Down-sweep then up-sweep: 75KB, 37.5KB, ..., then back up.
        let mut level_seq: Vec<u32> = (0..levels).collect();
        level_seq.extend((0..levels - 1).rev());
        for &level in &level_seq {
            for r in 0..n {
                let mut phase = Phase::default();
                // The 75 KB peak of Figure 2(f) is the rank's total load
                // at the finest level, split across the six neighbors and
                // halving per level.
                for peer in neighbors_3d_open(r, dims) {
                    let jitter = 0.9 + 0.2 * rng.next_f64();
                    let bytes = 75.0 * 1024.0 / 6.0 / (1u64 << level) as f64 * jitter;
                    phase.sends.push(SendOp {
                        peer,
                        bytes: scaled(bytes.max(256.0), spec.msg_scale),
                    });
                }
                programs[r as usize].phases.push(phase);
            }
        }
    }
    JobTrace { programs }
}

/// Factor `n` into the most cubic (x, y, z) grid with `x*y*z >= n`,
/// preferring exact factorizations (1000 -> 10x10x10, 1728 -> 12x12x12).
fn cube_dims(n: u32) -> (u32, u32, u32) {
    let c = (n as f64).cbrt().round() as u32;
    for x in (1..=c + 1).rev() {
        if n % x == 0 {
            let rest = n / x;
            let s = (rest as f64).sqrt().round() as u32;
            for y in (1..=s + 1).rev() {
                if rest % y == 0 {
                    let z = rest / y;
                    return (x, y.max(z), y.min(z));
                }
            }
        }
    }
    (n, 1, 1)
}

fn coords(r: u32, dims: (u32, u32, u32)) -> (u32, u32, u32) {
    let (x, y, _z) = dims;
    (r % x, (r / x) % y, r / (x * y))
}

fn index(c: (u32, u32, u32), dims: (u32, u32, u32)) -> u32 {
    c.0 + c.1 * dims.0 + c.2 * dims.0 * dims.1
}

/// The six 3-D neighbors with periodic (torus) boundaries — FB fills
/// *periodic* domain boundaries.
fn neighbors_3d(r: u32, dims: (u32, u32, u32)) -> Vec<u32> {
    let (x, y, z) = coords(r, dims);
    let (dx, dy, dz) = dims;
    let mut out = Vec::with_capacity(6);
    for (nx, ny, nz) in [
        ((x + 1) % dx, y, z),
        ((x + dx - 1) % dx, y, z),
        (x, (y + 1) % dy, z),
        (x, (y + dy - 1) % dy, z),
        (x, y, (z + 1) % dz),
        (x, y, (z + dz - 1) % dz),
    ] {
        let peer = index((nx, ny, nz), dims);
        if peer != r && !out.contains(&peer) {
            out.push(peer);
        }
    }
    out
}

/// The up-to-six 3-D neighbors *without* wraparound — AMG ranks on domain
/// boundaries have fewer neighbors ("up to six neighbors, depending on
/// rank boundaries").
fn neighbors_3d_open(r: u32, dims: (u32, u32, u32)) -> Vec<u32> {
    let (x, y, z) = coords(r, dims);
    let (dx, dy, dz) = dims;
    let mut out = Vec::with_capacity(6);
    let mut push = |c: (i64, i64, i64)| {
        if c.0 >= 0 && c.0 < dx as i64 && c.1 >= 0 && c.1 < dy as i64 && c.2 >= 0 && c.2 < dz as i64
        {
            out.push(index((c.0 as u32, c.1 as u32, c.2 as u32), dims));
        }
    };
    let (xi, yi, zi) = (x as i64, y as i64, z as i64);
    push((xi + 1, yi, zi));
    push((xi - 1, yi, zi));
    push((xi, yi + 1, zi));
    push((xi, yi - 1, zi));
    push((xi, yi, zi + 1));
    push((xi, yi, zi - 1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(kind: AppKind, ranks: u32) -> JobTrace {
        generate(&WorkloadSpec {
            kind,
            ranks,
            msg_scale: 1.0,
            seed: 7,
        })
    }

    #[test]
    fn labels_and_paper_sizes() {
        assert_eq!(AppKind::CrystalRouter.label(), "CR");
        assert_eq!(AppKind::FillBoundary.label(), "FB");
        assert_eq!(AppKind::Amg.label(), "AMG");
        assert_eq!(AppKind::CrystalRouter.paper_ranks(), 1000);
        assert_eq!(AppKind::FillBoundary.paper_ranks(), 1000);
        assert_eq!(AppKind::Amg.paper_ranks(), 1728);
    }

    #[test]
    fn cube_dims_exact_cubes() {
        assert_eq!(cube_dims(1000), (10, 10, 10));
        assert_eq!(cube_dims(1728), (12, 12, 12));
        assert_eq!(cube_dims(64), (4, 4, 4));
        assert_eq!(cube_dims(8), (2, 2, 2));
    }

    #[test]
    fn neighbors_periodic_always_six_for_big_grids() {
        let dims = (10, 10, 10);
        for r in [0u32, 5, 999, 500] {
            let nb = neighbors_3d(r, dims);
            assert_eq!(nb.len(), 6, "rank {r}");
            let set: std::collections::HashSet<_> = nb.iter().collect();
            assert_eq!(set.len(), 6);
        }
    }

    #[test]
    fn neighbors_open_boundary_has_fewer() {
        let dims = (12, 12, 12);
        // Corner rank 0 has exactly 3 neighbors.
        assert_eq!(neighbors_3d_open(0, dims).len(), 3);
        // An interior rank has 6.
        let interior = index((5, 5, 5), dims);
        assert_eq!(neighbors_3d_open(interior, dims).len(), 6);
    }

    #[test]
    fn all_apps_generate_valid_traces() {
        for kind in [AppKind::CrystalRouter, AppKind::FillBoundary, AppKind::Amg] {
            let t = gen(kind, kind.paper_ranks());
            t.validate().unwrap();
            assert_eq!(t.ranks(), kind.paper_ranks());
            assert!(t.phase_count() > 0);
            assert!(t.total_bytes() > 0);
        }
    }

    #[test]
    fn cr_has_constant_load_near_190kb() {
        let t = gen(AppKind::CrystalRouter, 1000);
        // The hypercube transfers dominate; their sizes must cluster at
        // ~190 KB (+-5%).
        let mut big = Vec::new();
        for p in &t.programs {
            for ph in &p.phases {
                for s in &ph.sends {
                    if s.bytes > 100 * 1024 {
                        big.push(s.bytes);
                    }
                }
            }
        }
        assert!(!big.is_empty());
        let lo = 190.0 * 1024.0 * 0.94;
        let hi = 190.0 * 1024.0 * 1.06;
        assert!(big.iter().all(|&b| (b as f64) > lo && (b as f64) < hi));
    }

    #[test]
    fn cr_stage_count_is_log2() {
        let t = gen(AppKind::CrystalRouter, 1000);
        assert_eq!(t.phase_count(), 10); // ceil(log2 1000)
        let t = gen(AppKind::CrystalRouter, 16);
        assert_eq!(t.phase_count(), 4);
    }

    #[test]
    fn fb_per_rank_load_fluctuates_in_paper_band() {
        let t = gen(AppKind::FillBoundary, 1000);
        // Per-rank per-iteration load (Figure 2(e)) must span the
        // 100 KB .. 2560 KB band, fluctuating strongly.
        let mut loads = Vec::new();
        for p in &t.programs {
            for ph in &p.phases {
                loads.push(ph.bytes() as f64);
            }
        }
        let min = loads.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = loads.iter().cloned().fold(0.0, f64::max);
        assert!(min >= 100.0 * 1024.0 * 0.6, "min {min}");
        assert!(max <= 2560.0 * 1024.0 * 1.4, "max {max}");
        assert!(max / min > 5.0, "range too narrow: {min}..{max}");
    }

    #[test]
    fn amg_sizes_decrease_with_level_and_stay_small() {
        let t = gen(AppKind::Amg, 1728);
        // Peak <= 75 KB * 1.1 jitter.
        let max = t
            .programs
            .iter()
            .flat_map(|p| p.phases.iter())
            .flat_map(|ph| ph.sends.iter())
            .map(|s| s.bytes)
            .max()
            .unwrap();
        assert!(max <= (75 * 1024 * 11) / 10, "max {max}");
        // Rank 0's first V-cycle: phase sizes halve going down.
        let p0 = &t.programs[0];
        let first = p0.phases[0].sends[0].bytes as f64;
        let second = p0.phases[1].sends[0].bytes as f64;
        assert!(second < first, "level sizes should shrink");
    }

    #[test]
    fn amg_average_load_well_below_cr() {
        let cr = gen(AppKind::CrystalRouter, 1000);
        let amg = gen(AppKind::Amg, 1728);
        assert!(
            amg.avg_load_per_rank() < cr.avg_load_per_rank() / 2.0,
            "AMG {} vs CR {}",
            amg.avg_load_per_rank(),
            cr.avg_load_per_rank()
        );
    }

    #[test]
    fn msg_scale_scales_total_bytes_linearly() {
        let base = generate(&WorkloadSpec {
            kind: AppKind::FillBoundary,
            ranks: 64,
            msg_scale: 1.0,
            seed: 3,
        });
        let double = generate(&WorkloadSpec {
            kind: AppKind::FillBoundary,
            ranks: 64,
            msg_scale: 2.0,
            seed: 3,
        });
        let ratio = double.total_bytes() as f64 / base.total_bytes() as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen(AppKind::FillBoundary, 216);
        let b = gen(AppKind::FillBoundary, 216);
        assert_eq!(a, b);
    }

    #[test]
    fn small_rank_counts_work() {
        for kind in [AppKind::CrystalRouter, AppKind::FillBoundary, AppKind::Amg] {
            let t = gen(kind, 8);
            t.validate().unwrap();
            assert_eq!(t.ranks(), 8);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 ranks")]
    fn one_rank_rejected() {
        let _ = gen(AppKind::CrystalRouter, 1);
    }
}
