//! Job arrival streams for the continuous service scenario.
//!
//! The paper's batch-scheduling motivation (and ROADMAP item 4) needs jobs
//! that *arrive over time*: a datacenter operator's workload is an open
//! stream, not a fixed batch. This module generates two kinds of stream —
//! a Poisson process with a configurable class mix (the standard open-loop
//! model in scheduling studies) and a trace-driven list parsed from a
//! simple CSV text format — both as plain [`Arrival`] records the service
//! simulator in `dfly-core` turns into placed, traced jobs.

use crate::apps::AppKind;
use crate::patterns::Pattern;
use dfly_engine::{Ns, Xoshiro256};

/// What an arriving job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// One of the three traced miniapps.
    App(AppKind),
    /// A synthetic-pattern background job (the service-stream analogue of
    /// the paper's external-interference traffic).
    Background(Pattern),
}

impl ArrivalKind {
    /// Stable label (`cr` / `fb` / `amg` / pattern label).
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalKind::App(AppKind::CrystalRouter) => "cr",
            ArrivalKind::App(AppKind::FillBoundary) => "fb",
            ArrivalKind::App(AppKind::Amg) => "amg",
            ArrivalKind::Background(p) => p.label(),
        }
    }

    /// The tenant this kind bills to (see [`tenant_label`]).
    pub fn tenant(&self) -> u32 {
        match self {
            ArrivalKind::App(AppKind::CrystalRouter) => 0,
            ArrivalKind::App(AppKind::FillBoundary) => 1,
            ArrivalKind::App(AppKind::Amg) => 2,
            ArrivalKind::Background(_) => 3,
        }
    }
}

/// Label of a tenant id assigned by [`ArrivalKind::tenant`].
pub fn tenant_label(tenant: u32) -> &'static str {
    match tenant {
        0 => "cr",
        1 => "fb",
        2 => "amg",
        3 => "bg",
        _ => "other",
    }
}

/// One job arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// When the job enters the queue.
    pub at: Ns,
    /// What it runs.
    pub kind: ArrivalKind,
    /// Rank count.
    pub ranks: u32,
    /// Message-size multiplier.
    pub msg_scale: f64,
    /// User-style runtime estimate (drives EASY-backfill reservations;
    /// an estimate, not a promise — jobs are never killed for exceeding
    /// it).
    pub estimate: Ns,
}

/// A deterministic runtime estimate for an arriving job — the role user
/// estimates play in EASY backfill. Deliberately crude (linear in ranks
/// and message scale, with a per-class base cost): backfill quality, not
/// correctness, depends on its accuracy.
pub fn runtime_estimate(kind: ArrivalKind, ranks: u32, msg_scale: f64) -> Ns {
    let base_us = match kind {
        ArrivalKind::App(AppKind::CrystalRouter) => 220.0,
        ArrivalKind::App(AppKind::FillBoundary) => 420.0,
        ArrivalKind::App(AppKind::Amg) => 120.0,
        ArrivalKind::Background(_) => 60.0,
    };
    Ns((1_000.0 * (base_us + 1.5 * ranks as f64) * msg_scale) as u64)
}

/// Plan for a Poisson arrival stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalPlan {
    /// Mean arrival rate, jobs per millisecond of simulated time.
    pub rate_per_ms: f64,
    /// Stream length: no arrival is generated after this time *unless*
    /// `min_jobs` has not been reached yet (the stream then extends
    /// deterministically until it is).
    pub duration: Ns,
    /// Floor on the number of generated jobs (0 = none).
    pub min_jobs: u32,
    /// Fraction of arrivals that are background pattern jobs (the rest
    /// split uniformly over CR/FB/AMG).
    pub background_share: f64,
    /// Smallest job size in ranks.
    pub min_ranks: u32,
    /// Largest job size in ranks.
    pub max_ranks: u32,
    /// Message-size multiplier applied to every job.
    pub msg_scale: f64,
    /// Stream seed.
    pub seed: u64,
}

impl ArrivalPlan {
    /// Validate the plan.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.rate_per_ms > 0.0) {
            return Err("rate_per_ms: must be positive".into());
        }
        if self.duration == Ns::ZERO && self.min_jobs == 0 {
            return Err("duration: zero-length stream with no min_jobs floor".into());
        }
        if !(0.0..=1.0).contains(&self.background_share) {
            return Err("background_share: must be within [0, 1]".into());
        }
        if self.min_ranks < 2 || self.max_ranks < self.min_ranks {
            return Err(format!(
                "ranks: need 2 <= min_ranks <= max_ranks (got {}..{})",
                self.min_ranks, self.max_ranks
            ));
        }
        if !(self.msg_scale > 0.0) {
            return Err("msg_scale: must be positive".into());
        }
        Ok(())
    }
}

/// Background patterns the Poisson stream draws from (the unkeyed,
/// machine-size-independent ones).
const BG_PATTERNS: [Pattern; 3] = [Pattern::UniformRandom, Pattern::Shift, Pattern::Ring];

/// Generate a Poisson arrival stream: exponential inter-arrival times at
/// `rate_per_ms`, class and size drawn per arrival. Deterministic per
/// seed; arrivals come out sorted by time.
pub fn poisson_arrivals(plan: &ArrivalPlan) -> Vec<Arrival> {
    plan.validate().expect("invalid arrival plan");
    let mut rng = Xoshiro256::seed_from(plan.seed);
    let mut out = Vec::new();
    let mut t_ns = 0.0f64;
    loop {
        // Inverse-CDF exponential draw; 1-u keeps ln's argument nonzero.
        let u = rng.next_f64();
        t_ns += -(1.0 - u).ln() * 1.0e6 / plan.rate_per_ms;
        let at = Ns(t_ns as u64);
        if at > plan.duration && out.len() >= plan.min_jobs as usize {
            break;
        }
        let kind = if rng.next_f64() < plan.background_share {
            ArrivalKind::Background(BG_PATTERNS[rng.next_below(BG_PATTERNS.len() as u64) as usize])
        } else {
            match rng.next_below(3) {
                0 => ArrivalKind::App(AppKind::CrystalRouter),
                1 => ArrivalKind::App(AppKind::FillBoundary),
                _ => ArrivalKind::App(AppKind::Amg),
            }
        };
        let ranks =
            plan.min_ranks + rng.next_below((plan.max_ranks - plan.min_ranks + 1) as u64) as u32;
        out.push(Arrival {
            at,
            kind,
            ranks,
            msg_scale: plan.msg_scale,
            estimate: runtime_estimate(kind, ranks, plan.msg_scale),
        });
    }
    out
}

/// Parse a trace-driven arrival list. One arrival per line:
///
/// ```text
/// # at_us, kind, ranks, msg_scale[, estimate_us]
/// 0,    cr,  32, 0.5
/// 250,  amg, 27, 0.5, 180
/// 400,  uniform, 16, 1.0
/// ```
///
/// `kind` is `cr`/`fb`/`amg` or a pattern label (`uniform`, `shift`,
/// `transpose`, `bit-reversal`, `ring`, `all-to-all`). A missing estimate
/// falls back to [`runtime_estimate`]. Blank lines and `#` comments are
/// skipped. Arrivals are returned sorted by time (stable).
pub fn parse_arrivals(text: &str) -> Result<Vec<Arrival>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < 4 || fields.len() > 5 {
            return Err(format!(
                "line {}: want `at_us, kind, ranks, msg_scale[, estimate_us]` (got {raw:?})",
                lineno + 1
            ));
        }
        let at_us: f64 = fields[0]
            .parse()
            .map_err(|_| format!("line {}: bad arrival time {:?}", lineno + 1, fields[0]))?;
        let kind = match fields[1] {
            "cr" => ArrivalKind::App(AppKind::CrystalRouter),
            "fb" => ArrivalKind::App(AppKind::FillBoundary),
            "amg" => ArrivalKind::App(AppKind::Amg),
            other => {
                let pattern = Pattern::ALL
                    .into_iter()
                    .find(|p| p.label() == other)
                    .ok_or_else(|| format!("line {}: unknown kind {other:?}", lineno + 1))?;
                ArrivalKind::Background(pattern)
            }
        };
        let ranks: u32 = fields[2]
            .parse()
            .map_err(|_| format!("line {}: bad rank count {:?}", lineno + 1, fields[2]))?;
        let msg_scale: f64 = fields[3]
            .parse()
            .map_err(|_| format!("line {}: bad msg_scale {:?}", lineno + 1, fields[3]))?;
        let estimate = match fields.get(4) {
            Some(f) => Ns((1_000.0
                * f.parse::<f64>()
                    .map_err(|_| format!("line {}: bad estimate {f:?}", lineno + 1))?)
                as u64),
            None => runtime_estimate(kind, ranks, msg_scale),
        };
        out.push(Arrival {
            at: Ns((1_000.0 * at_us) as u64),
            kind,
            ranks,
            msg_scale,
            estimate,
        });
    }
    out.sort_by_key(|a| a.at);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ArrivalPlan {
        ArrivalPlan {
            rate_per_ms: 2.0,
            duration: Ns::from_ms(50),
            min_jobs: 0,
            background_share: 0.25,
            min_ranks: 4,
            max_ranks: 32,
            msg_scale: 0.5,
            seed: 0xA221,
        }
    }

    #[test]
    fn poisson_stream_is_deterministic_and_sorted() {
        let a = poisson_arrivals(&plan());
        let b = poisson_arrivals(&plan());
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        // ~2 jobs/ms * 50 ms: statistically comfortably within 2x.
        assert!(a.len() > 50 && a.len() < 200, "{} arrivals", a.len());
    }

    #[test]
    fn poisson_rate_roughly_holds() {
        let mut p = plan();
        p.duration = Ns::from_ms(200);
        let jobs = poisson_arrivals(&p);
        let rate = jobs.len() as f64 / 200.0;
        assert!((rate - 2.0).abs() < 0.4, "rate {rate}");
    }

    #[test]
    fn min_jobs_floor_extends_the_stream() {
        let mut p = plan();
        p.duration = Ns::from_ms(1);
        p.min_jobs = 40;
        let jobs = poisson_arrivals(&p);
        assert!(jobs.len() >= 40);
        assert!(jobs.last().unwrap().at > p.duration);
    }

    #[test]
    fn class_mix_and_sizes_respect_the_plan() {
        let mut p = plan();
        p.duration = Ns::from_ms(500);
        let jobs = poisson_arrivals(&p);
        let bg = jobs
            .iter()
            .filter(|j| matches!(j.kind, ArrivalKind::Background(_)))
            .count();
        let share = bg as f64 / jobs.len() as f64;
        assert!((share - 0.25).abs() < 0.1, "background share {share}");
        assert!(jobs.iter().all(|j| (4..=32).contains(&j.ranks)));
        assert!(jobs.iter().all(|j| j.estimate > Ns::ZERO));
        // All four tenants appear.
        let tenants: std::collections::HashSet<u32> =
            jobs.iter().map(|j| j.kind.tenant()).collect();
        assert_eq!(tenants.len(), 4);
    }

    #[test]
    fn seeds_vary_the_stream() {
        let a = poisson_arrivals(&plan());
        let mut p = plan();
        p.seed ^= 1;
        assert_ne!(a, poisson_arrivals(&p));
    }

    #[test]
    fn plan_validation_names_fields() {
        let mut p = plan();
        p.rate_per_ms = 0.0;
        assert!(p.validate().unwrap_err().contains("rate_per_ms"));
        let mut p = plan();
        p.background_share = 1.5;
        assert!(p.validate().unwrap_err().contains("background_share"));
        let mut p = plan();
        p.max_ranks = 2;
        assert!(p.validate().unwrap_err().contains("ranks"));
        let mut p = plan();
        p.duration = Ns::ZERO;
        assert!(p.validate().unwrap_err().contains("duration"));
        p.min_jobs = 10;
        assert!(p.validate().is_ok());
    }

    #[test]
    fn parse_arrivals_roundtrips_the_documented_format() {
        let text = "\
            # demo stream\n\
            0,    cr,  32, 0.5\n\
            400,  uniform, 16, 1.0   # inline comment\n\
            250,  amg, 27, 0.5, 180\n\
            \n";
        let jobs = parse_arrivals(text).unwrap();
        assert_eq!(jobs.len(), 3);
        // Sorted by arrival despite file order.
        assert_eq!(jobs[0].at, Ns::ZERO);
        assert_eq!(jobs[1].at, Ns::from_us(250));
        assert_eq!(jobs[1].estimate, Ns::from_us(180));
        assert_eq!(jobs[1].kind, ArrivalKind::App(AppKind::Amg));
        assert_eq!(
            jobs[2].kind,
            ArrivalKind::Background(Pattern::UniformRandom)
        );
        assert_eq!(
            jobs[0].estimate,
            runtime_estimate(jobs[0].kind, 32, 0.5),
            "missing estimate falls back to the model"
        );
    }

    #[test]
    fn parse_arrivals_reports_bad_lines() {
        assert!(parse_arrivals("zz, cr, 4, 1.0")
            .unwrap_err()
            .contains("line 1"));
        assert!(parse_arrivals("0, warp, 4, 1.0")
            .unwrap_err()
            .contains("warp"));
        assert!(parse_arrivals("0, cr, 4").unwrap_err().contains("want"));
    }

    #[test]
    fn tenant_labels_cover_the_classes() {
        assert_eq!(
            tenant_label(ArrivalKind::App(AppKind::CrystalRouter).tenant()),
            "cr"
        );
        assert_eq!(
            tenant_label(ArrivalKind::Background(Pattern::Ring).tenant()),
            "bg"
        );
        assert_eq!(tenant_label(9), "other");
    }
}
