//! Synthetic background traffic for the external-interference study
//! (paper Section IV-C).
//!
//! A synthetic job occupies every node not assigned to the target
//! application and repeatedly issues messages:
//!
//! * **Uniform random** — each node sends a message to a random peer at a
//!   short interval: balanced external traffic.
//! * **Bursty** — at a long interval each node emits a burst of huge
//!   messages spread over `fanout` random peers (the paper sends to *all*
//!   peers; fanning out to a subset with the same total volume preserves
//!   the burst's load while keeping packet counts simulable — see
//!   `DESIGN.md`).
//!
//! Generation is *incremental*: the experiment runner asks for the
//! messages of a time window, so multi-hundred-millisecond runs don't
//! materialize millions of messages up front.

use dfly_engine::{Bytes, Ns, Xoshiro256};

/// Background traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackgroundKind {
    /// Small messages to random destinations at a short interval.
    UniformRandom,
    /// Large bursts at a long interval.
    Bursty,
}

impl BackgroundKind {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            BackgroundKind::UniformRandom => "uniform-random",
            BackgroundKind::Bursty => "bursty",
        }
    }
}

/// Background traffic specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackgroundSpec {
    /// The pattern.
    pub kind: BackgroundKind,
    /// Bytes each node sends *per destination* at each tick.
    pub message_bytes: Bytes,
    /// Interval between consecutive ticks.
    pub interval: Ns,
    /// Destinations per node per tick (1 for uniform random; the burst
    /// width for bursty traffic).
    pub fanout: u32,
    /// RNG seed.
    pub seed: u64,
}

impl BackgroundSpec {
    /// A uniform-random pattern: one `message_bytes` message per node per
    /// `interval`.
    pub fn uniform(message_bytes: Bytes, interval: Ns, seed: u64) -> BackgroundSpec {
        BackgroundSpec {
            kind: BackgroundKind::UniformRandom,
            message_bytes,
            interval,
            fanout: 1,
            seed,
        }
    }

    /// A bursty pattern: `fanout` messages of `message_bytes` per node per
    /// `interval`.
    pub fn bursty(message_bytes: Bytes, interval: Ns, fanout: u32, seed: u64) -> BackgroundSpec {
        BackgroundSpec {
            kind: BackgroundKind::Bursty,
            message_bytes,
            interval,
            fanout,
            seed,
        }
    }

    /// Peak traffic load: total bytes all `nodes` inject at one tick
    /// (the paper's Table II metric).
    pub fn peak_load_bytes(&self, nodes: u32) -> Bytes {
        nodes as u64 * self.fanout as u64 * self.message_bytes
    }

    /// Validate the spec.
    pub fn validate(&self) -> Result<(), String> {
        if self.interval == Ns::ZERO {
            return Err("background interval must be positive".into());
        }
        if self.fanout == 0 {
            return Err("fanout must be positive".into());
        }
        if self.message_bytes == 0 {
            return Err("message_bytes must be positive".into());
        }
        Ok(())
    }
}

/// One background message to inject (indices into the background job's
/// node list; the runner maps them to machine nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BgMessage {
    /// Injection time.
    pub at: Ns,
    /// Sender, as an index into the background node list.
    pub src_index: u32,
    /// Destination, as an index into the background node list.
    pub dst_index: u32,
    /// Payload.
    pub bytes: Bytes,
}

/// Incremental generator of background messages.
#[derive(Debug, Clone)]
pub struct BackgroundTraffic {
    spec: BackgroundSpec,
    nodes: u32,
    next_tick: u64,
    rng: Xoshiro256,
}

impl BackgroundTraffic {
    /// A generator over a synthetic job of `nodes` nodes.
    pub fn new(spec: BackgroundSpec, nodes: u32) -> BackgroundTraffic {
        spec.validate().expect("invalid background spec");
        assert!(nodes >= 2, "background job needs at least 2 nodes");
        BackgroundTraffic {
            spec,
            nodes,
            next_tick: 0,
            rng: Xoshiro256::seed_from(spec.seed),
        }
    }

    /// The spec in use.
    pub fn spec(&self) -> &BackgroundSpec {
        &self.spec
    }

    /// Produce all messages with injection time in `[from, to)`. Must be
    /// called with monotonically advancing windows.
    pub fn batch(&mut self, from: Ns, to: Ns, out: &mut Vec<BgMessage>) {
        assert!(to >= from);
        loop {
            let t = Ns(self.next_tick * self.spec.interval.as_nanos());
            if t >= to {
                return;
            }
            self.next_tick += 1;
            if t < from {
                // Window skipped past this tick (caller advanced); keep
                // RNG consumption identical by still drawing destinations.
            }
            let emit = t >= from;
            for src in 0..self.nodes {
                for _ in 0..self.spec.fanout {
                    // Random destination other than self.
                    let mut dst = self.rng.next_below(self.nodes as u64 - 1) as u32;
                    if dst >= src {
                        dst += 1;
                    }
                    if emit {
                        out.push(BgMessage {
                            at: t,
                            src_index: src,
                            dst_index: dst,
                            bytes: self.spec.message_bytes,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform() -> BackgroundTraffic {
        BackgroundTraffic::new(BackgroundSpec::uniform(1000, Ns::from_us(10), 1), 8)
    }

    #[test]
    fn labels() {
        assert_eq!(BackgroundKind::UniformRandom.label(), "uniform-random");
        assert_eq!(BackgroundKind::Bursty.label(), "bursty");
    }

    #[test]
    fn uniform_batch_counts() {
        let mut bg = uniform();
        let mut out = Vec::new();
        bg.batch(Ns::ZERO, Ns::from_us(30), &mut out);
        // Ticks at 0, 10us, 20us: 3 ticks x 8 nodes x fanout 1.
        assert_eq!(out.len(), 24);
        assert!(out.iter().all(|m| m.bytes == 1000));
        assert!(out.iter().all(|m| m.src_index != m.dst_index));
        assert!(out.iter().all(|m| m.dst_index < 8));
    }

    #[test]
    fn batches_are_contiguous_without_duplicates() {
        let mut bg = uniform();
        let mut a = Vec::new();
        bg.batch(Ns::ZERO, Ns::from_us(15), &mut a);
        let mut b = Vec::new();
        bg.batch(Ns::from_us(15), Ns::from_us(30), &mut b);
        assert_eq!(a.len(), 16); // ticks 0, 10us
        assert_eq!(b.len(), 8); // tick 20us
        assert!(a.iter().all(|m| m.at < Ns::from_us(15)));
        assert!(b.iter().all(|m| m.at >= Ns::from_us(15)));
    }

    #[test]
    fn bursty_fanout() {
        let spec = BackgroundSpec::bursty(1 << 20, Ns::from_ms(5), 4, 9);
        let mut bg = BackgroundTraffic::new(spec, 10);
        let mut out = Vec::new();
        bg.batch(Ns::ZERO, Ns(1), &mut out);
        // One tick at t=0: 10 nodes x 4 destinations.
        assert_eq!(out.len(), 40);
        assert!(out.iter().all(|m| m.bytes == 1 << 20));
    }

    #[test]
    fn peak_load_matches_table_ii_formula() {
        // Uniform: nodes * message_bytes.
        let s = BackgroundSpec::uniform(16_000, Ns::from_us(100), 0);
        assert_eq!(s.peak_load_bytes(2456), 2456 * 16_000);
        // Bursty: nodes * fanout * message_bytes.
        let s = BackgroundSpec::bursty(1 << 20, Ns::from_ms(20), 32, 0);
        assert_eq!(s.peak_load_bytes(100), 100 * 32 * (1 << 20));
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut bg = uniform();
            let mut out = Vec::new();
            bg.batch(Ns::ZERO, Ns::from_us(100), &mut out);
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn validation() {
        assert!(BackgroundSpec::uniform(0, Ns(1), 0).validate().is_err());
        assert!(BackgroundSpec::uniform(1, Ns::ZERO, 0).validate().is_err());
        let mut s = BackgroundSpec::bursty(1, Ns(1), 1, 0);
        s.fanout = 0;
        assert!(s.validate().is_err());
        assert!(BackgroundSpec::uniform(1, Ns(1), 0).validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn single_node_job_rejected() {
        let _ = BackgroundTraffic::new(BackgroundSpec::uniform(1, Ns(1), 0), 1);
    }
}
