//! Synthetic background traffic for the external-interference study
//! (paper Section IV-C).
//!
//! A synthetic job occupies every node not assigned to the target
//! application and repeatedly issues messages:
//!
//! * **Uniform random** — each node sends a message to a random peer at a
//!   short interval: balanced external traffic.
//! * **Bursty** — at a long interval each node emits a burst of huge
//!   messages spread over `fanout` *distinct* random peers (the paper sends to *all*
//!   peers; fanning out to a subset with the same total volume preserves
//!   the burst's load while keeping packet counts simulable — see
//!   `DESIGN.md`).
//!
//! Generation is *incremental*: the experiment runner asks for the
//! messages of a time window, so multi-hundred-millisecond runs don't
//! materialize millions of messages up front.

use dfly_engine::{Bytes, Ns, Xoshiro256};

/// Background traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackgroundKind {
    /// Small messages to random destinations at a short interval.
    UniformRandom,
    /// Large bursts at a long interval.
    Bursty,
}

impl BackgroundKind {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            BackgroundKind::UniformRandom => "uniform-random",
            BackgroundKind::Bursty => "bursty",
        }
    }
}

/// Background traffic specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackgroundSpec {
    /// The pattern.
    pub kind: BackgroundKind,
    /// Bytes each node sends *per destination* at each tick.
    pub message_bytes: Bytes,
    /// Interval between consecutive ticks.
    pub interval: Ns,
    /// Destinations per node per tick (1 for uniform random; the burst
    /// width for bursty traffic).
    pub fanout: u32,
    /// RNG seed.
    pub seed: u64,
}

impl BackgroundSpec {
    /// A uniform-random pattern: one `message_bytes` message per node per
    /// `interval`.
    pub fn uniform(message_bytes: Bytes, interval: Ns, seed: u64) -> BackgroundSpec {
        BackgroundSpec {
            kind: BackgroundKind::UniformRandom,
            message_bytes,
            interval,
            fanout: 1,
            seed,
        }
    }

    /// A bursty pattern: `fanout` messages of `message_bytes` per node per
    /// `interval`.
    pub fn bursty(message_bytes: Bytes, interval: Ns, fanout: u32, seed: u64) -> BackgroundSpec {
        BackgroundSpec {
            kind: BackgroundKind::Bursty,
            message_bytes,
            interval,
            fanout,
            seed,
        }
    }

    /// Peak traffic load: total bytes all `nodes` inject at one tick
    /// (the paper's Table II metric).
    pub fn peak_load_bytes(&self, nodes: u32) -> Bytes {
        nodes as u64 * self.fanout as u64 * self.message_bytes
    }

    /// Validate the spec.
    pub fn validate(&self) -> Result<(), String> {
        if self.interval == Ns::ZERO {
            return Err("background interval must be positive".into());
        }
        if self.fanout == 0 {
            return Err("fanout must be positive".into());
        }
        if self.message_bytes == 0 {
            return Err("message_bytes must be positive".into());
        }
        Ok(())
    }
}

/// One background message to inject (indices into the background job's
/// node list; the runner maps them to machine nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BgMessage {
    /// Injection time.
    pub at: Ns,
    /// Sender, as an index into the background node list.
    pub src_index: u32,
    /// Destination, as an index into the background node list.
    pub dst_index: u32,
    /// Payload.
    pub bytes: Bytes,
}

/// Incremental generator of background messages.
#[derive(Debug, Clone)]
pub struct BackgroundTraffic {
    spec: BackgroundSpec,
    nodes: u32,
    next_tick: u64,
    rng: Xoshiro256,
}

impl BackgroundTraffic {
    /// A generator over a synthetic job of `nodes` nodes.
    pub fn new(spec: BackgroundSpec, nodes: u32) -> BackgroundTraffic {
        spec.validate().expect("invalid background spec");
        assert!(nodes >= 2, "background job needs at least 2 nodes");
        assert!(
            spec.fanout < nodes,
            "burst fanout {} needs {} distinct peers but the job only has {}",
            spec.fanout,
            spec.fanout,
            nodes - 1
        );
        BackgroundTraffic {
            spec,
            nodes,
            next_tick: 0,
            rng: Xoshiro256::seed_from(spec.seed),
        }
    }

    /// The spec in use.
    pub fn spec(&self) -> &BackgroundSpec {
        &self.spec
    }

    /// Produce all messages with injection time in `[from, to)`. Must be
    /// called with monotonically advancing windows.
    pub fn batch(&mut self, from: Ns, to: Ns, out: &mut Vec<BgMessage>) {
        assert!(to >= from);
        loop {
            let t = Ns(self.next_tick * self.spec.interval.as_nanos());
            if t >= to {
                return;
            }
            self.next_tick += 1;
            if t < from {
                // Window skipped past this tick (caller advanced); keep
                // RNG consumption identical by still drawing destinations.
            }
            let emit = t >= from;
            for src in 0..self.nodes {
                if self.spec.fanout == 1 {
                    // Single draw, no distinctness to enforce — keep the
                    // historical one-call-per-message RNG stream.
                    let mut dst = self.rng.next_below(self.nodes as u64 - 1) as u32;
                    if dst >= src {
                        dst += 1;
                    }
                    if emit {
                        out.push(BgMessage {
                            at: t,
                            src_index: src,
                            dst_index: dst,
                            bytes: self.spec.message_bytes,
                        });
                    }
                } else {
                    // A burst goes to `fanout` *distinct* peers: sampling
                    // with replacement would silently collapse a burst's
                    // width (and its peak load) whenever two draws
                    // collide. Sample without replacement from the
                    // `nodes - 1` non-self indices and shift around self.
                    let picks = self
                        .rng
                        .sample_indices(self.nodes as usize - 1, self.spec.fanout as usize);
                    for v in picks {
                        let mut dst = v as u32;
                        if dst >= src {
                            dst += 1;
                        }
                        if emit {
                            out.push(BgMessage {
                                at: t,
                                src_index: src,
                                dst_index: dst,
                                bytes: self.spec.message_bytes,
                            });
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform() -> BackgroundTraffic {
        BackgroundTraffic::new(BackgroundSpec::uniform(1000, Ns::from_us(10), 1), 8)
    }

    #[test]
    fn labels() {
        assert_eq!(BackgroundKind::UniformRandom.label(), "uniform-random");
        assert_eq!(BackgroundKind::Bursty.label(), "bursty");
    }

    #[test]
    fn uniform_batch_counts() {
        let mut bg = uniform();
        let mut out = Vec::new();
        bg.batch(Ns::ZERO, Ns::from_us(30), &mut out);
        // Ticks at 0, 10us, 20us: 3 ticks x 8 nodes x fanout 1.
        assert_eq!(out.len(), 24);
        assert!(out.iter().all(|m| m.bytes == 1000));
        assert!(out.iter().all(|m| m.src_index != m.dst_index));
        assert!(out.iter().all(|m| m.dst_index < 8));
    }

    #[test]
    fn batches_are_contiguous_without_duplicates() {
        let mut bg = uniform();
        let mut a = Vec::new();
        bg.batch(Ns::ZERO, Ns::from_us(15), &mut a);
        let mut b = Vec::new();
        bg.batch(Ns::from_us(15), Ns::from_us(30), &mut b);
        assert_eq!(a.len(), 16); // ticks 0, 10us
        assert_eq!(b.len(), 8); // tick 20us
        assert!(a.iter().all(|m| m.at < Ns::from_us(15)));
        assert!(b.iter().all(|m| m.at >= Ns::from_us(15)));
    }

    #[test]
    fn bursty_fanout() {
        let spec = BackgroundSpec::bursty(1 << 20, Ns::from_ms(5), 4, 9);
        let mut bg = BackgroundTraffic::new(spec, 10);
        let mut out = Vec::new();
        bg.batch(Ns::ZERO, Ns(1), &mut out);
        // One tick at t=0: 10 nodes x 4 destinations.
        assert_eq!(out.len(), 40);
        assert!(out.iter().all(|m| m.bytes == 1 << 20));
    }

    #[test]
    fn bursty_destinations_are_distinct_within_a_burst() {
        // Regression: destinations used to be drawn with replacement, so
        // a wide burst could silently collapse onto fewer peers than
        // `fanout` (under-delivering the paper's Table II peak load).
        let spec = BackgroundSpec::bursty(1 << 20, Ns::from_ms(5), 6, 3);
        let mut bg = BackgroundTraffic::new(spec, 8);
        let mut out = Vec::new();
        bg.batch(Ns::ZERO, Ns::from_ms(20), &mut out);
        assert_eq!(out.len(), 4 * 8 * 6); // 4 ticks x 8 nodes x fanout 6
        for tick in 0..4u64 {
            let at = Ns(tick * Ns::from_ms(5).as_nanos());
            for src in 0..8u32 {
                let dsts: Vec<u32> = out
                    .iter()
                    .filter(|m| m.at == at && m.src_index == src)
                    .map(|m| m.dst_index)
                    .collect();
                assert_eq!(dsts.len(), 6);
                let unique: std::collections::HashSet<_> = dsts.iter().collect();
                assert_eq!(
                    unique.len(),
                    6,
                    "burst from {src} at {at:?} repeated a peer"
                );
                assert!(dsts.iter().all(|&d| d != src && d < 8));
            }
        }
    }

    #[test]
    fn skipped_windows_stay_rng_aligned() {
        // A caller that fast-forwards past early ticks must see the same
        // messages for later ticks as a caller that asked for every
        // window: skipped ticks still consume the RNG.
        let spec = BackgroundSpec::bursty(4096, Ns::from_us(10), 3, 11);
        let mut contiguous = BackgroundTraffic::new(spec, 9);
        let mut all = Vec::new();
        contiguous.batch(Ns::ZERO, Ns::from_us(30), &mut all);
        let tail: Vec<BgMessage> = all
            .iter()
            .copied()
            .filter(|m| m.at >= Ns::from_us(20))
            .collect();

        let mut skipping = BackgroundTraffic::new(spec, 9);
        let mut got = Vec::new();
        skipping.batch(Ns::from_us(20), Ns::from_us(30), &mut got);
        assert_eq!(got, tail);
    }

    #[test]
    #[should_panic(expected = "distinct peers")]
    fn fanout_wider_than_job_rejected() {
        let spec = BackgroundSpec::bursty(1, Ns(1), 8, 0);
        let _ = BackgroundTraffic::new(spec, 8);
    }

    #[test]
    fn peak_load_matches_table_ii_formula() {
        // Uniform: nodes * message_bytes.
        let s = BackgroundSpec::uniform(16_000, Ns::from_us(100), 0);
        assert_eq!(s.peak_load_bytes(2456), 2456 * 16_000);
        // Bursty: nodes * fanout * message_bytes.
        let s = BackgroundSpec::bursty(1 << 20, Ns::from_ms(20), 32, 0);
        assert_eq!(s.peak_load_bytes(100), 100 * 32 * (1 << 20));
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut bg = uniform();
            let mut out = Vec::new();
            bg.batch(Ns::ZERO, Ns::from_us(100), &mut out);
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn validation() {
        assert!(BackgroundSpec::uniform(0, Ns(1), 0).validate().is_err());
        assert!(BackgroundSpec::uniform(1, Ns::ZERO, 0).validate().is_err());
        let mut s = BackgroundSpec::bursty(1, Ns(1), 1, 0);
        s.fanout = 0;
        assert!(s.validate().is_err());
        assert!(BackgroundSpec::uniform(1, Ns(1), 0).validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn single_node_job_rejected() {
        let _ = BackgroundTraffic::new(BackgroundSpec::uniform(1, Ns(1), 0), 1);
    }
}
