//! # dfly-workloads
//!
//! Synthetic communication workloads reproducing the three DOE Design
//! Forward miniapps the paper traces (Section III-A), plus the synthetic
//! background traffic of the external-interference study (Section IV-C).
//!
//! The original study replays DUMPI traces; those traces are not
//! redistributable, so this crate generates traces with the *published*
//! structure instead (see `DESIGN.md`, substitution table):
//!
//! * **CR (Crystal Router, 1000 ranks)** — multistage many-to-many
//!   (hypercube-style stages) plus neighborhood exchanges; steady ~190 KB
//!   message load.
//! * **FB (Fill Boundary, 1000 ranks)** — 10x10x10 3-D domain decomposition
//!   with periodic boundary halo exchange plus scattered many-to-many;
//!   strongly fluctuating 100 KB–2560 KB loads.
//! * **AMG (1728 ranks)** — 12x12x12 regional communication with up to six
//!   neighbors over multigrid levels of geometrically decreasing message
//!   size; three short surges, peak 75 KB.
//!
//! Every generator takes a `msg_scale` factor — the knob of the paper's
//! sensitivity study (Figure 7) — and a seed. Figure 2's communication
//! matrices and load-over-time series are regenerated from these traces by
//! [`matrix::CommMatrix`] so the structural match with the paper is
//! directly inspectable.

#![warn(missing_docs)]

pub mod apps;
pub mod arrivals;
pub mod background;
pub mod matrix;
pub mod patterns;
pub mod trace;
pub mod traceio;

pub use apps::{generate, AppKind, WorkloadSpec};
pub use arrivals::{
    parse_arrivals, poisson_arrivals, runtime_estimate, tenant_label, Arrival, ArrivalKind,
    ArrivalPlan,
};
pub use background::{BackgroundKind, BackgroundSpec, BackgroundTraffic, BgMessage};
pub use matrix::{load_over_phases, CommMatrix};
pub use patterns::{generate_pattern, Pattern, PatternSpec};
pub use trace::{JobTrace, Phase, RankProgram, SendOp};
pub use traceio::{read_trace, trace_from_str, trace_to_string, write_trace};
