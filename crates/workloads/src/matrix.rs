//! Communication-matrix and load-over-time extraction (paper Figure 2).

use crate::trace::JobTrace;
use dfly_engine::Bytes;

/// A dense rank-by-rank communication matrix: entry `(src, dst)` is the
/// total bytes `src` sends to `dst` over the whole trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommMatrix {
    n: usize,
    bytes: Vec<Bytes>,
}

impl CommMatrix {
    /// Build from a trace.
    pub fn from_trace(trace: &JobTrace) -> CommMatrix {
        let n = trace.ranks() as usize;
        let mut bytes = vec![0u64; n * n];
        for (src, prog) in trace.programs.iter().enumerate() {
            for phase in &prog.phases {
                for s in &phase.sends {
                    bytes[src * n + s.peer as usize] += s.bytes;
                }
            }
        }
        CommMatrix { n, bytes }
    }

    /// Rank count.
    pub fn ranks(&self) -> usize {
        self.n
    }

    /// Bytes sent from `src` to `dst`.
    pub fn get(&self, src: usize, dst: usize) -> Bytes {
        self.bytes[src * self.n + dst]
    }

    /// Total bytes in the matrix.
    pub fn total(&self) -> Bytes {
        self.bytes.iter().sum()
    }

    /// Fraction of the total volume exchanged between ranks within
    /// `radius` of each other — a locality measure ("a substantial portion
    /// of the communication occurs in small neighborhoods of MPI ranks").
    pub fn neighborhood_fraction(&self, radius: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut near = 0u64;
        for s in 0..self.n {
            for d in 0..self.n {
                if s.abs_diff(d) <= radius {
                    near += self.get(s, d);
                }
            }
        }
        near as f64 / total as f64
    }

    /// Number of non-zero (src, dst) pairs.
    pub fn nonzero_pairs(&self) -> usize {
        self.bytes.iter().filter(|&&b| b > 0).count()
    }

    /// Down-sampled `k x k` block view (each cell sums a block of the full
    /// matrix) — what the reproduction binary prints for Figure 2(a–c).
    pub fn block_view(&self, k: usize) -> Vec<Vec<Bytes>> {
        assert!(k >= 1);
        let k = k.min(self.n);
        let mut out = vec![vec![0u64; k]; k];
        for s in 0..self.n {
            for d in 0..self.n {
                let b = self.get(s, d);
                if b > 0 {
                    out[s * k / self.n][d * k / self.n] += b;
                }
            }
        }
        out
    }
}

/// The per-phase average message load per rank — the load-over-time series
/// of Figure 2(d–f) with phases as the time axis (the paper strips compute
/// time, so trace phases are the only clock the trace itself has).
pub fn load_over_phases(trace: &JobTrace) -> Vec<f64> {
    let phases = trace.phase_count();
    let n = trace.ranks() as f64;
    let mut loads = vec![0.0f64; phases];
    for prog in &trace.programs {
        for (i, phase) in prog.phases.iter().enumerate() {
            loads[i] += phase.bytes() as f64;
        }
    }
    for l in &mut loads {
        *l /= n;
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{generate, AppKind, WorkloadSpec};
    use crate::trace::{Phase, RankProgram, SendOp};

    fn spec(kind: AppKind, ranks: u32) -> WorkloadSpec {
        WorkloadSpec {
            kind,
            ranks,
            msg_scale: 1.0,
            seed: 11,
        }
    }

    #[test]
    fn matrix_from_simple_trace() {
        let trace = JobTrace {
            programs: vec![
                RankProgram {
                    phases: vec![Phase {
                        sends: vec![SendOp { peer: 1, bytes: 10 }, SendOp { peer: 1, bytes: 5 }],
                    }],
                },
                RankProgram { phases: vec![] },
            ],
        };
        let m = CommMatrix::from_trace(&trace);
        assert_eq!(m.ranks(), 2);
        assert_eq!(m.get(0, 1), 15);
        assert_eq!(m.get(1, 0), 0);
        assert_eq!(m.total(), 15);
        assert_eq!(m.nonzero_pairs(), 1);
    }

    #[test]
    fn cr_matrix_is_symmetric_manytomany_with_neighborhoods() {
        let m = CommMatrix::from_trace(&generate(&spec(AppKind::CrystalRouter, 256)));
        // Hypercube partners: every rank exchanges with log2(256)=8
        // partners + 4 neighbors => >= 8 nonzero per row.
        for s in 0..256 {
            let row_nonzero = (0..256).filter(|&d| m.get(s, d) > 0).count();
            assert!(row_nonzero >= 8, "rank {s}: {row_nonzero}");
        }
        // Neighborhood share is substantial but not everything.
        let frac = m.neighborhood_fraction(2);
        assert!(frac > 0.1 && frac < 0.9, "neighborhood fraction {frac}");
        // Hypercube exchange is symmetric in volume up to jitter.
        let a = m.get(3, 3 ^ 4) as f64;
        let b = m.get(3 ^ 4, 3) as f64;
        assert!((a / b - 1.0).abs() < 0.2);
    }

    #[test]
    fn fb_matrix_is_neighbor_banded() {
        let m = CommMatrix::from_trace(&generate(&spec(AppKind::FillBoundary, 1000)));
        // x-neighbors at distance 1 must dominate random scatter.
        let near = m.get(500, 501);
        assert!(near > 100 * 1024, "halo volume {near}");
        // Matrix has structured bands at +-1, +-10, +-100 (grid strides).
        assert!(m.get(500, 510) > 0);
        assert!(m.get(500, 600) > 0);
    }

    #[test]
    fn amg_matrix_regional_only() {
        let m = CommMatrix::from_trace(&generate(&spec(AppKind::Amg, 1728)));
        // Strictly 6-neighbor: a rank never talks to a non-neighbor.
        let far = m.get(0, 1000);
        assert_eq!(far, 0);
        assert!(m.get(0, 1) > 0);
        // Non-periodic: corner rank 0 and opposite corner never talk.
        assert_eq!(m.get(0, 1727), 0);
    }

    #[test]
    fn load_over_phases_matches_totals() {
        let t = generate(&spec(AppKind::CrystalRouter, 64));
        let loads = load_over_phases(&t);
        assert_eq!(loads.len(), t.phase_count());
        let sum: f64 = loads.iter().sum::<f64>() * t.ranks() as f64;
        assert!((sum - t.total_bytes() as f64).abs() < 1.0);
    }

    #[test]
    fn amg_load_shows_three_surges() {
        let t = generate(&spec(AppKind::Amg, 512));
        let loads = load_over_phases(&t);
        // 3 cycles x 11 level-phases: the per-cycle maximum (the surge)
        // recurs three times.
        assert_eq!(loads.len(), 33);
        let cycle = 11;
        for c in 0..3 {
            let slice = &loads[c * cycle..(c + 1) * cycle];
            let peak = slice.iter().cloned().fold(0.0, f64::max);
            let trough = slice.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(peak / trough > 4.0, "cycle {c} flat: {trough}..{peak}");
        }
    }

    #[test]
    fn block_view_preserves_total() {
        let t = generate(&spec(AppKind::FillBoundary, 216));
        let m = CommMatrix::from_trace(&t);
        let blocks = m.block_view(8);
        let sum: u64 = blocks.iter().flatten().sum();
        assert_eq!(sum, m.total());
        assert_eq!(blocks.len(), 8);
    }

    #[test]
    fn neighborhood_fraction_extremes() {
        let t = generate(&spec(AppKind::Amg, 64));
        let m = CommMatrix::from_trace(&t);
        assert!(m.neighborhood_fraction(64) >= 0.999);
        let empty = CommMatrix::from_trace(&JobTrace { programs: vec![] });
        assert_eq!(empty.neighborhood_fraction(1), 0.0);
    }
}
