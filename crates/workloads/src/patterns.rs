//! Classic synthetic traffic patterns.
//!
//! The paper's related-work studies (Jain et al., Fuentes et al., Prisacari
//! et al.) evaluate dragonfly placement/routing with synthetic patterns
//! rather than application traces. This module provides the standard set
//! as [`JobTrace`] generators so the same experiment harness covers both
//! kinds of study, and so ablations can stress the network in controlled
//! ways.

use crate::trace::{JobTrace, Phase, RankProgram, SendOp};
use dfly_engine::{Bytes, Xoshiro256};

/// A synthetic traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Every rank sends to one uniformly random destination per phase.
    UniformRandom,
    /// Rank `i` sends to rank `(i + n/2) % n` — the classic worst case for
    /// minimal routing on low-diameter networks.
    Shift,
    /// Matrix transpose: rank `(r, c)` sends to `(c, r)` on the square
    /// process grid.
    Transpose,
    /// Bit-reversal permutation (power-of-two rank counts; other ranks
    /// idle).
    BitReversal,
    /// 1-D ring: each rank sends to both neighbours.
    Ring,
    /// Full all-to-all: every rank sends to every other rank each phase
    /// (bytes are divided by `n-1` so the per-rank load matches the other
    /// patterns).
    AllToAll,
}

impl Pattern {
    /// All patterns, for sweeps.
    pub const ALL: [Pattern; 6] = [
        Pattern::UniformRandom,
        Pattern::Shift,
        Pattern::Transpose,
        Pattern::BitReversal,
        Pattern::Ring,
        Pattern::AllToAll,
    ];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            Pattern::UniformRandom => "uniform",
            Pattern::Shift => "shift",
            Pattern::Transpose => "transpose",
            Pattern::BitReversal => "bit-reversal",
            Pattern::Ring => "ring",
            Pattern::AllToAll => "all-to-all",
        }
    }
}

/// Specification of a synthetic-pattern job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternSpec {
    /// The pattern.
    pub pattern: Pattern,
    /// Number of ranks.
    pub ranks: u32,
    /// Bytes each rank sends per phase (split across destinations where
    /// the pattern has several).
    pub bytes_per_phase: Bytes,
    /// Number of phases (dependency-chained, like app iterations).
    pub phases: u32,
    /// Seed (used by [`Pattern::UniformRandom`]).
    pub seed: u64,
}

/// Generate the trace for a pattern.
pub fn generate_pattern(spec: &PatternSpec) -> JobTrace {
    assert!(spec.ranks >= 2, "need at least 2 ranks");
    assert!(spec.bytes_per_phase > 0, "bytes_per_phase must be positive");
    assert!(spec.phases > 0, "need at least one phase");
    let n = spec.ranks;
    let mut rng = Xoshiro256::seed_from(spec.seed);
    let mut programs = vec![RankProgram::default(); n as usize];
    for _ in 0..spec.phases {
        for r in 0..n {
            let mut sends = Vec::new();
            match spec.pattern {
                Pattern::UniformRandom => {
                    let mut dst = rng.next_below(n as u64 - 1) as u32;
                    if dst >= r {
                        dst += 1;
                    }
                    sends.push(SendOp {
                        peer: dst,
                        bytes: spec.bytes_per_phase,
                    });
                }
                Pattern::Shift => {
                    let dst = (r + n / 2) % n;
                    if dst != r {
                        sends.push(SendOp {
                            peer: dst,
                            bytes: spec.bytes_per_phase,
                        });
                    }
                }
                Pattern::Transpose => {
                    let side = (n as f64).sqrt() as u32;
                    if r < side * side {
                        let (row, col) = (r / side, r % side);
                        let dst = col * side + row;
                        if dst != r {
                            sends.push(SendOp {
                                peer: dst,
                                bytes: spec.bytes_per_phase,
                            });
                        }
                    }
                }
                Pattern::BitReversal => {
                    let bits = 31 - n.next_power_of_two().leading_zeros();
                    let pow2 = 1u32 << bits;
                    if r < pow2 {
                        let dst = r.reverse_bits() >> (32 - bits);
                        if dst != r && dst < n {
                            sends.push(SendOp {
                                peer: dst,
                                bytes: spec.bytes_per_phase,
                            });
                        }
                    }
                }
                Pattern::Ring => {
                    let half = spec.bytes_per_phase / 2;
                    sends.push(SendOp {
                        peer: (r + 1) % n,
                        bytes: half.max(1),
                    });
                    sends.push(SendOp {
                        peer: (r + n - 1) % n,
                        bytes: half.max(1),
                    });
                }
                Pattern::AllToAll => {
                    let each = (spec.bytes_per_phase / (n as u64 - 1)).max(1);
                    for dst in 0..n {
                        if dst != r {
                            sends.push(SendOp {
                                peer: dst,
                                bytes: each,
                            });
                        }
                    }
                }
            }
            programs[r as usize].phases.push(Phase { sends });
        }
    }
    let trace = JobTrace { programs };
    debug_assert!(trace.validate().is_ok());
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(pattern: Pattern, ranks: u32) -> PatternSpec {
        PatternSpec {
            pattern,
            ranks,
            bytes_per_phase: 64 * 1024,
            phases: 3,
            seed: 5,
        }
    }

    #[test]
    fn all_patterns_generate_valid_traces() {
        for p in Pattern::ALL {
            for ranks in [2u32, 16, 64, 100] {
                let t = generate_pattern(&spec(p, ranks));
                t.validate()
                    .unwrap_or_else(|e| panic!("{p:?}/{ranks}: {e}"));
                assert_eq!(t.ranks(), ranks);
                assert_eq!(t.phase_count(), 3);
            }
        }
    }

    #[test]
    fn shift_is_a_permutation() {
        let t = generate_pattern(&spec(Pattern::Shift, 64));
        let mut dsts = std::collections::HashSet::new();
        for prog in &t.programs {
            let s = &prog.phases[0].sends[0];
            assert!(dsts.insert(s.peer), "duplicate destination {}", s.peer);
        }
        assert_eq!(dsts.len(), 64);
    }

    #[test]
    fn transpose_is_involutive() {
        let t = generate_pattern(&spec(Pattern::Transpose, 64));
        for (r, prog) in t.programs.iter().enumerate() {
            for s in &prog.phases[0].sends {
                // The destination's destination is the source.
                let back = &t.programs[s.peer as usize].phases[0].sends[0];
                assert_eq!(back.peer as usize, r);
            }
        }
        // Diagonal ranks (r == transpose(r)) send nothing.
        assert!(t.programs[0].phases[0].sends.is_empty());
    }

    #[test]
    fn bit_reversal_permutes_power_of_two() {
        let t = generate_pattern(&spec(Pattern::BitReversal, 16));
        // Rank 1 (0001) -> 8 (1000) for 4 bits.
        assert_eq!(t.programs[1].phases[0].sends[0].peer, 8);
        assert_eq!(t.programs[2].phases[0].sends[0].peer, 4);
        // Palindromic ranks (0 -> 0, 6 = 0110 -> 0110) send nothing.
        assert!(t.programs[0].phases[0].sends.is_empty());
        assert!(t.programs[6].phases[0].sends.is_empty());
    }

    #[test]
    fn ring_sends_to_both_neighbours() {
        let t = generate_pattern(&spec(Pattern::Ring, 10));
        let sends = &t.programs[4].phases[0].sends;
        let peers: Vec<u32> = sends.iter().map(|s| s.peer).collect();
        assert_eq!(peers, vec![5, 3]);
    }

    #[test]
    fn all_to_all_covers_everyone_with_balanced_load() {
        let t = generate_pattern(&spec(Pattern::AllToAll, 9));
        let sends = &t.programs[0].phases[0].sends;
        assert_eq!(sends.len(), 8);
        let total: u64 = sends.iter().map(|s| s.bytes).sum();
        assert_eq!(total, 64 * 1024 / 8 * 8);
    }

    #[test]
    fn uniform_random_seeded() {
        let a = generate_pattern(&spec(Pattern::UniformRandom, 50));
        let b = generate_pattern(&spec(Pattern::UniformRandom, 50));
        assert_eq!(a, b);
        let mut other = spec(Pattern::UniformRandom, 50);
        other.seed = 6;
        assert_ne!(a, generate_pattern(&other));
    }

    #[test]
    fn per_rank_loads_comparable_across_patterns() {
        // The bytes_per_phase normalization keeps total volume within 2x
        // across patterns (ring/all-to-all round down a little).
        let mut loads = Vec::new();
        for p in [Pattern::Shift, Pattern::Ring, Pattern::AllToAll] {
            let t = generate_pattern(&spec(p, 64));
            loads.push(t.avg_load_per_rank());
        }
        let max = loads.iter().cloned().fold(0.0f64, f64::max);
        let min = loads.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 2.0, "{loads:?}");
    }

    #[test]
    #[should_panic(expected = "at least 2 ranks")]
    fn tiny_rejected() {
        let _ = generate_pattern(&spec(Pattern::Shift, 1));
    }
}
