//! Trace representation: per-rank programs of dependency-ordered phases.
//!
//! The paper replays DUMPI traces with computation delays stripped
//! (Section III-A: "the computation delay in the traces is ignored"). What
//! remains is the *dependency structure*: a rank cannot start its next
//! communication phase before the previous one completed. A
//! [`RankProgram`] is exactly that: an ordered list of [`Phase`]s, each a
//! set of non-blocking sends; phase `p+1` begins when every send the rank
//! issued in phase `p` has been delivered **and** every message addressed
//! to the rank in phase `p` has arrived (the matching receives).

use dfly_engine::Bytes;

/// One non-blocking send operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendOp {
    /// Destination rank (job-local).
    pub peer: u32,
    /// Message payload.
    pub bytes: Bytes,
}

/// One communication phase of a rank: a set of sends issued together.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Phase {
    /// Sends issued at the start of the phase.
    pub sends: Vec<SendOp>,
}

impl Phase {
    /// Total bytes this phase sends.
    pub fn bytes(&self) -> Bytes {
        self.sends.iter().map(|s| s.bytes).sum()
    }
}

/// The communication program of a single MPI rank.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RankProgram {
    /// Ordered phases.
    pub phases: Vec<Phase>,
}

impl RankProgram {
    /// Total bytes sent by the rank over the whole program.
    pub fn total_bytes(&self) -> Bytes {
        self.phases.iter().map(|p| p.bytes()).sum()
    }

    /// Total number of send operations.
    pub fn total_sends(&self) -> usize {
        self.phases.iter().map(|p| p.sends.len()).sum()
    }
}

/// The full trace of a job: one program per rank, all with the same number
/// of phases (ranks without work in a phase simply have no sends there).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobTrace {
    /// Program of each rank; index = rank.
    pub programs: Vec<RankProgram>,
}

impl JobTrace {
    /// Number of ranks.
    pub fn ranks(&self) -> u32 {
        self.programs.len() as u32
    }

    /// Number of phases (0 for an empty trace).
    pub fn phase_count(&self) -> usize {
        self.programs
            .iter()
            .map(|p| p.phases.len())
            .max()
            .unwrap_or(0)
    }

    /// Total bytes sent by all ranks.
    pub fn total_bytes(&self) -> Bytes {
        self.programs.iter().map(|p| p.total_bytes()).sum()
    }

    /// Total send operations across all ranks.
    pub fn total_sends(&self) -> usize {
        self.programs.iter().map(|p| p.total_sends()).sum()
    }

    /// Average message load per rank (the paper's communication-intensity
    /// metric: bytes transferred per rank).
    pub fn avg_load_per_rank(&self) -> f64 {
        if self.programs.is_empty() {
            return 0.0;
        }
        self.total_bytes() as f64 / self.programs.len() as f64
    }

    /// Expected number of messages each rank receives in each phase:
    /// `recv_counts[rank][phase]`. The MPI engine uses this to decide when
    /// a rank's phase is complete.
    pub fn recv_counts(&self) -> Vec<Vec<u32>> {
        let phases = self.phase_count();
        let mut counts = vec![vec![0u32; phases]; self.programs.len()];
        for prog in &self.programs {
            for (ph, phase) in prog.phases.iter().enumerate() {
                for send in &phase.sends {
                    counts[send.peer as usize][ph] += 1;
                }
            }
        }
        counts
    }

    /// Scale every message size by `factor` (the sensitivity-study knob),
    /// with a 1-byte floor so messages never vanish.
    pub fn scaled(&self, factor: f64) -> JobTrace {
        assert!(factor > 0.0, "scale factor must be positive");
        let programs = self
            .programs
            .iter()
            .map(|prog| RankProgram {
                phases: prog
                    .phases
                    .iter()
                    .map(|phase| Phase {
                        sends: phase
                            .sends
                            .iter()
                            .map(|s| SendOp {
                                peer: s.peer,
                                bytes: ((s.bytes as f64 * factor) as Bytes).max(1),
                            })
                            .collect(),
                    })
                    .collect(),
            })
            .collect();
        JobTrace { programs }
    }

    /// Validate: every peer index is a valid rank. Returns a description
    /// of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.ranks();
        for (r, prog) in self.programs.iter().enumerate() {
            for (ph, phase) in prog.phases.iter().enumerate() {
                for s in &phase.sends {
                    if s.peer >= n {
                        return Err(format!(
                            "rank {r} phase {ph} sends to out-of-range peer {}",
                            s.peer
                        ));
                    }
                    if s.peer as usize == r {
                        return Err(format!("rank {r} phase {ph} sends to itself"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> JobTrace {
        // 3 ranks, 2 phases: ring exchange then reverse-ring.
        JobTrace {
            programs: vec![
                RankProgram {
                    phases: vec![
                        Phase {
                            sends: vec![SendOp {
                                peer: 1,
                                bytes: 100,
                            }],
                        },
                        Phase {
                            sends: vec![SendOp { peer: 2, bytes: 50 }],
                        },
                    ],
                },
                RankProgram {
                    phases: vec![
                        Phase {
                            sends: vec![SendOp {
                                peer: 2,
                                bytes: 100,
                            }],
                        },
                        Phase {
                            sends: vec![SendOp { peer: 0, bytes: 50 }],
                        },
                    ],
                },
                RankProgram {
                    phases: vec![
                        Phase {
                            sends: vec![SendOp {
                                peer: 0,
                                bytes: 100,
                            }],
                        },
                        Phase {
                            sends: vec![SendOp { peer: 1, bytes: 50 }],
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn totals() {
        let t = tiny();
        assert_eq!(t.ranks(), 3);
        assert_eq!(t.phase_count(), 2);
        assert_eq!(t.total_bytes(), 450);
        assert_eq!(t.total_sends(), 6);
        assert_eq!(t.avg_load_per_rank(), 150.0);
        assert_eq!(t.programs[0].total_bytes(), 150);
        assert_eq!(t.programs[0].total_sends(), 2);
    }

    #[test]
    fn recv_counts_match_sends() {
        let t = tiny();
        let rc = t.recv_counts();
        // Phase 0: ring => everyone receives exactly one.
        assert_eq!(rc[0][0], 1);
        assert_eq!(rc[1][0], 1);
        assert_eq!(rc[2][0], 1);
        // Phase 1: reverse ring.
        assert_eq!(rc[0][1], 1);
        assert_eq!(rc[1][1], 1);
        assert_eq!(rc[2][1], 1);
    }

    #[test]
    fn scaling_scales_bytes_only() {
        let t = tiny();
        let s = t.scaled(2.0);
        assert_eq!(s.total_bytes(), 900);
        assert_eq!(s.total_sends(), 6);
        let down = t.scaled(0.001);
        // 100 * 0.001 = 0.1 -> floored to 1 byte.
        assert_eq!(down.programs[0].phases[0].sends[0].bytes, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let _ = tiny().scaled(0.0);
    }

    #[test]
    fn validate_catches_bad_peer() {
        let mut t = tiny();
        t.programs[0].phases[0].sends[0].peer = 99;
        assert!(t.validate().is_err());
        let mut t2 = tiny();
        t2.programs[1].phases[0].sends[0].peer = 1;
        assert!(t2.validate().unwrap_err().contains("itself"));
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn empty_trace() {
        let t = JobTrace { programs: vec![] };
        assert_eq!(t.ranks(), 0);
        assert_eq!(t.phase_count(), 0);
        assert_eq!(t.avg_load_per_rank(), 0.0);
        assert!(t.validate().is_ok());
    }
}
