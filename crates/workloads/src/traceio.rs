//! Trace serialization: a line-oriented text format for [`JobTrace`]s.
//!
//! The paper replays DUMPI traces; this reproduction generates synthetic
//! ones. The bridge between the two worlds is a dump/load format, so
//! users with real traces can convert them (one `send` line per
//! operation) and replay them on this simulator, and so generated traces
//! can be archived and diffed.
//!
//! Format (`#`-comments and blank lines ignored):
//!
//! ```text
//! trace v1 ranks=4
//! # rank phase -> peer bytes
//! send 0 0 1 190000
//! send 0 0 2 24576
//! send 1 0 0 190000
//! ```

use crate::trace::{JobTrace, Phase, RankProgram, SendOp};
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

/// Serialize a trace to the text format.
pub fn write_trace<W: Write>(trace: &JobTrace, out: &mut W) -> io::Result<()> {
    writeln!(out, "trace v1 ranks={}", trace.ranks())?;
    writeln!(out, "# rank phase peer bytes")?;
    let mut line = String::new();
    for (rank, prog) in trace.programs.iter().enumerate() {
        for (phase, ph) in prog.phases.iter().enumerate() {
            for s in &ph.sends {
                line.clear();
                let _ = write!(line, "send {rank} {phase} {} {}", s.peer, s.bytes);
                writeln!(out, "{line}")?;
            }
            if ph.sends.is_empty() {
                // Preserve empty phases (they carry dependency structure).
                writeln!(out, "phase {rank} {phase}")?;
            }
        }
    }
    Ok(())
}

/// Serialize a trace to a string.
pub fn trace_to_string(trace: &JobTrace) -> String {
    let mut buf = Vec::new();
    write_trace(trace, &mut buf).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("format is ASCII")
}

/// Parse error with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a trace from the text format.
pub fn read_trace<R: BufRead>(input: R) -> Result<JobTrace, ParseError> {
    let err = |line: usize, message: String| ParseError { line, message };
    let mut ranks: Option<u32> = None;
    let mut programs: Vec<RankProgram> = Vec::new();

    fn ensure_phase(programs: &mut [RankProgram], rank: usize, phase: usize) -> &mut Phase {
        let prog = &mut programs[rank];
        while prog.phases.len() <= phase {
            prog.phases.push(Phase::default());
        }
        &mut prog.phases[phase]
    }

    for (i, line) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = line.map_err(|e| err(lineno, format!("io error: {e}")))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_ascii_whitespace();
        match fields.next() {
            Some("trace") => {
                if ranks.is_some() {
                    return Err(err(lineno, "duplicate header".into()));
                }
                if fields.next() != Some("v1") {
                    return Err(err(lineno, "unsupported version (want v1)".into()));
                }
                let ranks_field = fields
                    .next()
                    .and_then(|f| f.strip_prefix("ranks="))
                    .ok_or_else(|| err(lineno, "missing ranks=N".into()))?;
                let n: u32 = ranks_field
                    .parse()
                    .map_err(|_| err(lineno, format!("bad rank count {ranks_field:?}")))?;
                if n < 2 {
                    return Err(err(lineno, "need at least 2 ranks".into()));
                }
                programs = vec![RankProgram::default(); n as usize];
                ranks = Some(n);
            }
            Some("send") => {
                let n = ranks.ok_or_else(|| err(lineno, "send before header".into()))?;
                let mut next_num = |name: &str| -> Result<u64, ParseError> {
                    fields
                        .next()
                        .ok_or_else(|| err(lineno, format!("missing {name}")))?
                        .parse()
                        .map_err(|_| err(lineno, format!("bad {name}")))
                };
                let rank = next_num("rank")?;
                let phase = next_num("phase")?;
                let peer = next_num("peer")?;
                let bytes = next_num("bytes")?;
                if rank >= n as u64 || peer >= n as u64 {
                    return Err(err(lineno, "rank/peer out of range".into()));
                }
                if rank == peer {
                    return Err(err(lineno, "self-send".into()));
                }
                ensure_phase(&mut programs, rank as usize, phase as usize)
                    .sends
                    .push(SendOp {
                        peer: peer as u32,
                        bytes,
                    });
            }
            Some("phase") => {
                let n = ranks.ok_or_else(|| err(lineno, "phase before header".into()))?;
                let rank: u64 = fields
                    .next()
                    .ok_or_else(|| err(lineno, "missing rank".into()))?
                    .parse()
                    .map_err(|_| err(lineno, "bad rank".into()))?;
                let phase: u64 = fields
                    .next()
                    .ok_or_else(|| err(lineno, "missing phase".into()))?
                    .parse()
                    .map_err(|_| err(lineno, "bad phase".into()))?;
                if rank >= n as u64 {
                    return Err(err(lineno, "rank out of range".into()));
                }
                let _ = ensure_phase(&mut programs, rank as usize, phase as usize);
            }
            Some(other) => {
                return Err(err(lineno, format!("unknown directive {other:?}")));
            }
            None => unreachable!("empty lines skipped"),
        }
    }
    if ranks.is_none() {
        return Err(err(0, "missing 'trace v1 ranks=N' header".into()));
    }
    let trace = JobTrace { programs };
    trace
        .validate()
        .map_err(|m| err(0, format!("invalid trace: {m}")))?;
    Ok(trace)
}

/// Parse a trace from a string.
pub fn trace_from_str(s: &str) -> Result<JobTrace, ParseError> {
    read_trace(io::BufReader::new(s.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{generate, AppKind, WorkloadSpec};

    #[test]
    fn roundtrip_generated_traces() {
        for kind in [AppKind::CrystalRouter, AppKind::FillBoundary, AppKind::Amg] {
            let trace = generate(&WorkloadSpec {
                kind,
                ranks: 27,
                msg_scale: 0.5,
                seed: 5,
            });
            let text = trace_to_string(&trace);
            let back = trace_from_str(&text).unwrap();
            assert_eq!(trace, back, "{kind:?}");
        }
    }

    #[test]
    fn parses_hand_written_trace() {
        let text = "\
trace v1 ranks=3
# a comment

send 0 0 1 1000
send 1 0 2 500
phase 2 0
send 2 1 0 250
";
        let t = trace_from_str(text).unwrap();
        assert_eq!(t.ranks(), 3);
        assert_eq!(t.programs[0].phases[0].sends[0].bytes, 1000);
        assert!(t.programs[2].phases[0].sends.is_empty());
        assert_eq!(t.programs[2].phases[1].sends[0].peer, 0);
    }

    #[test]
    fn preserves_empty_phases() {
        let trace = JobTrace {
            programs: vec![
                RankProgram {
                    phases: vec![
                        Phase {
                            sends: vec![SendOp { peer: 1, bytes: 7 }],
                        },
                        Phase::default(),
                    ],
                },
                RankProgram {
                    phases: vec![Phase::default(), Phase::default()],
                },
            ],
        };
        let back = trace_from_str(&trace_to_string(&trace)).unwrap();
        assert_eq!(back.programs[0].phases.len(), 2);
        assert_eq!(back.programs[1].phases.len(), 2);
        assert_eq!(trace, back);
    }

    #[test]
    fn rejects_malformed_input() {
        for (text, want) in [
            ("", "missing"),
            ("send 0 0 1 10\n", "before header"),
            ("trace v2 ranks=3\n", "version"),
            ("trace v1 ranks=1\n", "at least 2"),
            ("trace v1 ranks=3\nsend 0 0 9 10\n", "out of range"),
            ("trace v1 ranks=3\nsend 1 0 1 10\n", "self-send"),
            ("trace v1 ranks=3\nsend 0 0 1\n", "missing bytes"),
            ("trace v1 ranks=3\nfrob 1 2\n", "unknown directive"),
            ("trace v1 ranks=3\ntrace v1 ranks=3\n", "duplicate"),
            ("trace v1 ranks=x\n", "bad rank count"),
        ] {
            let e = trace_from_str(text).unwrap_err();
            assert!(
                e.message.contains(want),
                "{text:?}: got {:?}, want {want:?}",
                e.message
            );
        }
    }

    #[test]
    fn error_carries_line_numbers() {
        let e = trace_from_str("trace v1 ranks=3\n# c\nsend 0 0 99 1\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().starts_with("line 3:"));
    }
}
