//! Custom workload: drive the simulator with your own communication
//! pattern instead of the built-in miniapps — here, a 2-D stencil with a
//! butterfly reduction at the end — and compare placement policies.
//!
//! Run with: `cargo run --release --example custom_workload`

use dragonfly_tradeoff::core::mpi::MpiDriver;
use dragonfly_tradeoff::network::{Network, NetworkParams, Routing};
use dragonfly_tradeoff::placement::NodePool;
use dragonfly_tradeoff::prelude::*;
use dragonfly_tradeoff::topology::Topology;
use dragonfly_tradeoff::workloads::{JobTrace, Phase, SendOp};
use std::sync::Arc;

/// Build a 6x6 2-D periodic stencil (4 neighbors, 64 KiB halos) for 8
/// iterations, followed by a log2(n) butterfly reduction of 8 KiB messages.
fn stencil_with_reduction(side: u32) -> JobTrace {
    let n = side * side;
    let mut programs = vec![RankProgram::default(); n as usize];
    let coord = |r: u32| (r % side, r / side);
    let index = |x: u32, y: u32| (x % side) + (y % side) * side;
    for _iter in 0..8 {
        for r in 0..n {
            let (x, y) = coord(r);
            let sends = vec![
                SendOp {
                    peer: index(x + 1, y),
                    bytes: 64 * 1024,
                },
                SendOp {
                    peer: index(x + side - 1, y),
                    bytes: 64 * 1024,
                },
                SendOp {
                    peer: index(x, y + 1),
                    bytes: 64 * 1024,
                },
                SendOp {
                    peer: index(x, y + side - 1),
                    bytes: 64 * 1024,
                },
            ];
            programs[r as usize].phases.push(Phase { sends });
        }
    }
    let stages = (32 - (n - 1).leading_zeros()) as u32;
    for d in 0..stages {
        for r in 0..n {
            let partner = r ^ (1 << d);
            let sends = if partner < n {
                vec![SendOp {
                    peer: partner,
                    bytes: 8 * 1024,
                }]
            } else {
                vec![]
            };
            programs[r as usize].phases.push(Phase { sends });
        }
    }
    JobTrace { programs }
}

fn main() {
    let trace = stencil_with_reduction(6);
    println!(
        "custom workload: {} ranks, {} phases, {:.1} MB total\n",
        trace.ranks(),
        trace.phase_count(),
        trace.total_bytes() as f64 / 1e6
    );

    let topo = Arc::new(Topology::build(TopologyConfig::small_test()));
    for placement_policy in [PlacementPolicy::Contiguous, PlacementPolicy::RandomNode] {
        for routing in [Routing::Minimal, Routing::Adaptive] {
            let mut pool = NodePool::new(&topo);
            let mut rng = Xoshiro256::seed_from(7);
            let placement = placement_policy
                .allocate(&topo, &mut pool, trace.ranks(), &mut rng)
                .expect("machine large enough");
            let mut net = Network::new(topo.clone(), NetworkParams::default(), routing, 11);
            let result = MpiDriver::new(&mut net, &trace, &placement, None).run();
            println!(
                "{:>4}-{}: job end {:>9}, slowest rank {:>9}",
                placement_policy.label(),
                routing.label(),
                result.job_end.to_string(),
                result.max_comm_time().to_string(),
            );
        }
    }
    println!("\n(see examples/placement_study.rs for the full ten-config grid)");
}
