//! External-interference study: run AMG alone, then with uniform-random
//! and bursty background traffic occupying the rest of the machine, and
//! compare the slowdown under localized vs balanced placement — the
//! paper's Section IV-C experiment in miniature.
//!
//! Run with: `cargo run --release --example interference`

use dragonfly_tradeoff::core::config::BackgroundConfig;
use dragonfly_tradeoff::prelude::*;
use dragonfly_tradeoff::workloads::BackgroundSpec;

fn run_case(
    label: &str,
    placement: PlacementPolicy,
    routing: RoutingPolicy,
    background: Option<BackgroundConfig>,
) -> f64 {
    let mut cfg = ExperimentConfig::small_test();
    cfg.app = AppSelection::Amg { ranks: 27 };
    cfg.placement = placement;
    cfg.routing = routing;
    cfg.background = background;
    let r = run_experiment(&cfg);
    let median = r.comm_time_stats().median;
    println!(
        "{label:<26} median {median:>7.3} ms   max {:>7.3} ms   bg msgs {}",
        r.comm_time_stats().max,
        r.background_messages
    );
    median
}

fn main() {
    println!("AMG (27 ranks) on a 64-node dragonfly, 37 background nodes\n");

    let uniform = || {
        Some(BackgroundConfig {
            spec: BackgroundSpec::uniform(16 * 1024, Ns::from_us(1), 0),
        })
    };
    let bursty = || {
        Some(BackgroundConfig {
            spec: BackgroundSpec::bursty(64 * 1024, Ns::from_us(40), 8, 0),
        })
    };

    let solo_cont = run_case(
        "cont-min, no background",
        PlacementPolicy::Contiguous,
        RoutingPolicy::Minimal,
        None,
    );
    let solo_rand = run_case(
        "rand-adp, no background",
        PlacementPolicy::RandomNode,
        RoutingPolicy::Adaptive,
        None,
    );
    println!();
    let noisy_cont = run_case(
        "cont-min, uniform bg",
        PlacementPolicy::Contiguous,
        RoutingPolicy::Minimal,
        uniform(),
    );
    let noisy_rand = run_case(
        "rand-adp, uniform bg",
        PlacementPolicy::RandomNode,
        RoutingPolicy::Adaptive,
        uniform(),
    );
    println!();
    run_case(
        "cont-min, bursty bg",
        PlacementPolicy::Contiguous,
        RoutingPolicy::Minimal,
        bursty(),
    );
    run_case(
        "rand-adp, bursty bg",
        PlacementPolicy::RandomNode,
        RoutingPolicy::Adaptive,
        bursty(),
    );

    println!(
        "\nslowdown under uniform background: cont-min {:+.0}%, rand-adp {:+.0}%",
        100.0 * (noisy_cont / solo_cont - 1.0),
        100.0 * (noisy_rand / solo_rand - 1.0),
    );
    println!(
        "localized communication (cont-min) shields the app from network \
         sharing — the paper's Section IV-C finding."
    );
}
