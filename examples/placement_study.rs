//! Placement study: reproduce the paper's core trade-off on a small
//! machine — localized communication (contiguous placement) versus
//! balanced network traffic (random-node placement) — for all ten
//! placement x routing configurations.
//!
//! Run with: `cargo run --release --example placement_study`

use dragonfly_tradeoff::core::report::ConfigLabel;
use dragonfly_tradeoff::network::MetricsFilter;
use dragonfly_tradeoff::prelude::*;

fn main() {
    let mut base = ExperimentConfig::small_test();
    base.app = AppSelection::FillBoundary { ranks: 27 };
    base.msg_scale = 1.0;

    println!("Fill Boundary (27 ranks) on a 64-node dragonfly\n");
    println!(
        "{:<10} {:>12} {:>10} {:>16} {:>18}",
        "config", "median (ms)", "avg hops", "local sat (ms)", "local traffic p99"
    );

    let grid = run_config_grid(&base, &ConfigLabel::all_ten());
    for cell in &grid {
        let r = &cell.result;
        let all = MetricsFilter::All;
        let sat: f64 = r.metrics.local_saturation_ms(&all).iter().sum();
        let traffic = r.local_traffic_mb_cdf(&all);
        println!(
            "{:<10} {:>12.3} {:>10.2} {:>16.3} {:>15.3} MB",
            cell.label.to_string(),
            r.comm_time_stats().median,
            r.mean_hops(),
            sat,
            traffic.quantile(0.99),
        );
    }

    // The trade-off in one sentence.
    let cont = &grid[0].result; // cont-min
    let rand = &grid[4].result; // rand-min
    println!(
        "\ncontiguous keeps hops low ({:.2} vs {:.2}) but concentrates traffic; \
         random-node spreads traffic but pays hops.",
        cont.mean_hops(),
        rand.mean_hops()
    );
}
