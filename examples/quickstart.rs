//! Quickstart: simulate one application on a small dragonfly machine and
//! print the paper's headline metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use dragonfly_tradeoff::prelude::*;

fn main() {
    // A miniature machine (4 groups x 8 routers x 2 nodes = 64 nodes) so
    // the example finishes in well under a second. Swap in
    // `TopologyConfig::theta()` for the paper's 3,456-node system.
    let mut cfg = ExperimentConfig::small_test();
    cfg.app = AppSelection::CrystalRouter { ranks: 32 };
    cfg.placement = PlacementPolicy::RandomNode;
    cfg.routing = RoutingPolicy::Adaptive;
    cfg.msg_scale = 1.0;

    let result = run_experiment(&cfg);

    println!(
        "Crystal Router, {} ranks, {}-{} on a {}-node dragonfly",
        cfg.app.ranks(),
        cfg.placement.label(),
        cfg.routing.label(),
        cfg.topology.total_nodes(),
    );
    let stats = result.comm_time_stats();
    println!(
        "communication time: min {:.3} ms, median {:.3} ms, max {:.3} ms",
        stats.min, stats.median, stats.max
    );
    println!("mean packet hops: {:.2}", result.mean_hops());

    // Link-level metrics, as in the paper's Figures 4-6.
    let all = dragonfly_tradeoff::network::MetricsFilter::All;
    let local = result.local_traffic_mb_cdf(&all);
    println!(
        "local channels: {} total, median traffic {:.3} MB, busiest {:.3} MB",
        local.len(),
        local.quantile(0.5),
        local.max().unwrap_or(0.0)
    );
    let sat = result.local_saturation_ms_cdf(&all);
    println!(
        "local links saturated for up to {:.4} ms ({}% of links never saturated)",
        sat.max().unwrap_or(0.0),
        sat.percent_at_or_below(0.0).round()
    );
}
