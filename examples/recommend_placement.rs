//! Placement recommendation: measure a workload's communication intensity
//! and apply the paper's findings to pick a placement + routing config,
//! then verify the recommendation against a brute-force grid search.
//!
//! Run with: `cargo run --release --example recommend_placement`

use dragonfly_tradeoff::core::recommend::{recommend, CommIntensity};
use dragonfly_tradeoff::core::report::ConfigLabel;
use dragonfly_tradeoff::prelude::*;
use dragonfly_tradeoff::workloads::{generate, AppKind, WorkloadSpec};

fn main() {
    for kind in [AppKind::CrystalRouter, AppKind::FillBoundary, AppKind::Amg] {
        let ranks = 27;
        let trace = generate(&WorkloadSpec {
            kind,
            ranks,
            msg_scale: 1.0,
            seed: 1,
        });
        let intensity = CommIntensity::of(&trace);
        let rec = recommend(intensity, false);
        println!("\n== {} ({} ranks) ==", kind.label(), ranks);
        println!(
            "intensity: {:.2} MB/rank, {:.1} sends/rank/phase",
            intensity.avg_load_per_rank / 1e6,
            intensity.sends_per_rank_per_phase
        );
        println!(
            "recommended: {}-{}",
            rec.placement.label(),
            rec.routing.label()
        );
        println!("why: {}", rec.rationale);

        // Brute force the ten-config grid to grade the recommendation.
        let mut cfg = ExperimentConfig::small_test();
        cfg.app = match kind {
            AppKind::CrystalRouter => AppSelection::CrystalRouter { ranks },
            AppKind::FillBoundary => AppSelection::FillBoundary { ranks },
            AppKind::Amg => AppSelection::Amg { ranks },
        };
        let grid = run_config_grid(&cfg, &ConfigLabel::all_ten());
        let mut ranked: Vec<(String, f64)> = grid
            .iter()
            .map(|g| (g.label.to_string(), g.result.comm_time_stats().median))
            .collect();
        ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let rec_label = format!("{}-{}", rec.placement.label(), rec.routing.label());
        let position = ranked.iter().position(|(l, _)| *l == rec_label).unwrap();
        println!(
            "grid check: recommendation ranks {}/10 (best: {} at {:.3} ms)",
            position + 1,
            ranked[0].0,
            ranked[0].1
        );
    }
    println!(
        "\n(the recommendation is heuristic — the paper's point is exactly \
         that intensity predicts the winner)"
    );
}
