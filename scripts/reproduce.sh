#!/usr/bin/env bash
# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
#
#   bash scripts/reproduce.sh           # quick everywhere, full for Figs 3-6
#   FULL=1 bash scripts/reproduce.sh    # full scale everywhere (CPU-hours)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p dfly-bench

B=./target/release
mkdir -p results results/full

mode_flag="--quick"
out="results"
if [[ "${FULL:-0}" == "1" ]]; then
  mode_flag="--full"
fi

run() { # name, extra args...
  local name=$1; shift
  echo "== $name $* =="
  "$B/$name" "$@" | tee "results/${name}.log"
}

run fig2   $mode_flag
run table1
run fig3   --full --out results/full
run fig456 --full --out results/full
run fig7   $mode_flag --out $out
run table2 $mode_flag --out $out
run fig8   $mode_flag --out $out
run fig9   $mode_flag --out $out
run fig10  $mode_flag --out $out
run validate $mode_flag --out $out
run ablations $mode_flag --out $out
run patterns_study $mode_flag --out $out
run bully  $mode_flag --out $out
run timeline $mode_flag --out $out
run mapping_study $mode_flag --out $out
run scheduler_study $mode_flag --out $out
run variability_study $mode_flag --out $out

echo "All artifacts in results/ (full-scale figures in results/full/)."
