#!/usr/bin/env bash
# Hermetic verification gate: the workspace must build, test, and compile
# every bench target fully offline. If anyone reintroduces an external
# dependency, the --offline flags make this fail fast instead of silently
# fetching from a registry.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo build --offline --workspace --examples
cargo test -q --offline --workspace
cargo bench --no-run --offline --workspace

# Property suites, named so a failure is unmistakably a property-level
# regression (both also run inside the workspace sweep above; this is
# the explicit gate for the streaming-metrics and core invariants).
cargo test -q --offline -p dfly-stats --test streaming_props
cargo test -q --offline --test proptest_invariants
# Streaming metric structures must stay byte-bounded on a long run.
cargo test -q --offline --test memory_bound

echo "verify.sh: offline build + examples + tests + property suites + bench compile all passed."
