#!/usr/bin/env bash
# Hermetic verification gate: the workspace must build, test, and compile
# every bench target fully offline. If anyone reintroduces an external
# dependency, the --offline flags make this fail fast instead of silently
# fetching from a registry.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo build --offline --workspace --examples
cargo test -q --offline --workspace
cargo bench --no-run --offline --workspace

echo "verify.sh: offline build + examples + tests + bench compile all passed."
