//! # dragonfly-tradeoff
//!
//! A from-scratch Rust reproduction of *"Trade-Off Study of Localizing
//! Communication and Balancing Network Traffic on a Dragonfly System"*
//! (Wang, Mubarak, Yang, Ross, Lan — IPDPS 2018).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`engine`] — deterministic discrete-event core (time, events, RNG)
//! * [`topology`] — Theta-style Cray XC dragonfly topology
//! * [`network`] — packet-level network model with VC buffers, credit
//!   back-pressure, minimal and adaptive (UGAL-style) routing
//! * [`placement`] — the paper's five job placement policies
//! * [`workloads`] — synthetic CR / FB / AMG traces and background traffic
//! * [`stats`] — boxplot summaries, CDFs, tables, CSV
//! * [`obs`] — opt-in telemetry: event-loop profile, periodic link/VC/
//!   UGAL samplers, `obs_*.csv` sinks (collection lives in `network`)
//! * [`core`] — experiment configs, the MPI-like rank engine, runners,
//!   sweeps, and interference studies
//!
//! ## Quickstart
//!
//! ```
//! use dragonfly_tradeoff::prelude::*;
//!
//! // A small dragonfly (2 groups of 2x4 routers) so the doctest is fast.
//! let mut cfg = ExperimentConfig::small_test();
//! cfg.app = AppSelection::CrystalRouter { ranks: 16 };
//! cfg.placement = PlacementPolicy::RandomNode;
//! cfg.routing = RoutingPolicy::Adaptive;
//! let result = run_experiment(&cfg);
//! assert!(result.rank_comm_times.len() == 16);
//! assert!(result.max_comm_time() > Ns::ZERO);
//! ```

pub use dfly_core as core;
pub use dfly_engine as engine;
pub use dfly_network as network;
pub use dfly_obs as obs;
pub use dfly_placement as placement;
pub use dfly_stats as stats;
pub use dfly_topology as topology;
pub use dfly_workloads as workloads;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use dfly_core::config::{AppSelection, BackgroundConfig, ExperimentConfig, RoutingPolicy};
    pub use dfly_core::report::ConfigLabel;
    pub use dfly_core::runner::{run_experiment, ExperimentResult};
    pub use dfly_core::sweep::{run_config_grid, GridResult};
    pub use dfly_engine::{Bandwidth, Ns, Xoshiro256};
    pub use dfly_placement::PlacementPolicy;
    pub use dfly_stats::{BoxStats, Cdf};
    pub use dfly_topology::{NodeId, Topology, TopologyConfig};
    pub use dfly_workloads::{AppKind, RankProgram};
}
