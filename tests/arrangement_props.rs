//! Property tests over the global-link arrangement zoo: any valid
//! (shape, arrangement) pair must wire a machine that keeps the dragonfly
//! invariants — full group-pair connectivity, uniform per-router global
//! degree, bidirectional links — and seeded-random wiring must be
//! byte-identical across builds.

use dragonfly_tradeoff::engine::proptest::{check, Config};
use dragonfly_tradeoff::engine::Xoshiro256;
use dragonfly_tradeoff::topology::{ChannelClass, GlobalArrangement, Topology, TopologyConfig};
use std::collections::HashMap;

/// A random valid canonic dragonfly: sampled (p, a, h, g) snapped to the
/// nearest valid global-link count, paired with a random arrangement.
fn generate(rng: &mut Xoshiro256) -> (TopologyConfig, GlobalArrangement) {
    let g = 2 + rng.next_below(7) as u32; // 2..=8 groups
    let a = 1 + rng.next_below(6) as u32; // 1..=6 routers per group
    let p = 1 + rng.next_below(3) as u32; // 1..=3 nodes per router
    let h = 1 + rng.next_below(4) as u32; // snapped below if invalid
    let mut cfg = TopologyConfig::canonical(p, a, h, g);
    cfg.global_links_per_router = cfg.nearest_valid_global_links();
    cfg.validate()
        .expect("nearest_valid_global_links must produce a valid shape");
    let arrangement = match rng.index(4) {
        0 => GlobalArrangement::RoundRobin,
        1 => GlobalArrangement::Consecutive,
        2 => GlobalArrangement::PalmTree,
        _ => GlobalArrangement::Random {
            seed: rng.next_u64(),
        },
    };
    cfg.arrangement = arrangement;
    (cfg, arrangement)
}

/// The directed global channels of a built machine, as
/// (src_router, dst_router) pairs.
fn global_pairs(topo: &Topology) -> Vec<(u32, u32)> {
    topo.channels()
        .filter(|(_, info)| info.class == ChannelClass::Global)
        .map(|(_, info)| {
            (
                info.src.router().expect("global src is a router").0,
                info.dst.router().expect("global dst is a router").0,
            )
        })
        .collect()
}

#[test]
fn every_arrangement_keeps_the_dragonfly_invariants() {
    check(
        "arrangement_invariants",
        &Config::default(),
        generate,
        |(cfg, _)| {
            let topo = Topology::build(cfg.clone());
            let rpg = cfg.routers_per_group();
            let lpp = cfg.links_per_group_pair();
            let pairs = global_pairs(&topo);

            // Uniform per-router global degree: every router sources
            // exactly `global_links_per_router` global channels.
            let mut out_degree = vec![0u32; (cfg.groups * rpg) as usize];
            let mut per_pair: HashMap<(u32, u32), u32> = HashMap::new();
            for &(src, dst) in &pairs {
                out_degree[src as usize] += 1;
                let (ga, gb) = (src / rpg, dst / rpg);
                if ga == gb {
                    return Err(format!("global channel inside group {ga}"));
                }
                *per_pair.entry((ga.min(gb), ga.max(gb))).or_default() += 1;
            }
            for (r, &d) in out_degree.iter().enumerate() {
                if d != cfg.global_links_per_router {
                    return Err(format!(
                        "router {r} sources {d} global links, expected {}",
                        cfg.global_links_per_router
                    ));
                }
            }

            // Full connectivity: every group pair carries exactly its
            // share of parallel links (x2 for the two directions).
            for ga in 0..cfg.groups {
                for gb in (ga + 1)..cfg.groups {
                    let n = per_pair.get(&(ga, gb)).copied().unwrap_or(0);
                    if n != 2 * lpp {
                        return Err(format!(
                            "groups ({ga},{gb}) linked by {n} directed channels, expected {}",
                            2 * lpp
                        ));
                    }
                }
            }

            // Bidirectional: the directed pair multiset is symmetric.
            let mut dir: HashMap<(u32, u32), i64> = HashMap::new();
            for &(s, d) in &pairs {
                *dir.entry((s, d)).or_default() += 1;
                *dir.entry((d, s)).or_default() -= 1;
            }
            if let Some((k, _)) = dir.iter().find(|(_, &v)| v != 0) {
                return Err(format!("asymmetric global wiring at routers {k:?}"));
            }

            // The gateway accessor must agree with the channel table.
            let accessor_total: usize = (0..cfg.groups * rpg)
                .map(|r| {
                    topo.router_global_channels(dragonfly_tradeoff::topology::RouterId(r))
                        .len()
                })
                .sum();
            if accessor_total != pairs.len() {
                return Err(format!(
                    "router_global_channels lists {accessor_total} links, channel table has {}",
                    pairs.len()
                ));
            }
            Ok(())
        },
    );
}

#[test]
fn builds_are_byte_identical_for_the_same_config() {
    // Two builds of the same (shape, arrangement) — including
    // seeded-random wiring — must enumerate identical channel tables.
    check(
        "arrangement_build_determinism",
        &Config::with_cases(16),
        generate,
        |(cfg, _)| {
            let a = Topology::build(cfg.clone());
            let b = Topology::build(cfg.clone());
            if global_pairs(&a) != global_pairs(&b) {
                return Err("two builds of the same config wired differently".into());
            }
            if cfg.arrangement.plan(cfg) != cfg.arrangement.plan(cfg) {
                return Err("plan() is not deterministic".into());
            }
            Ok(())
        },
    );
}

#[test]
fn arrangements_rewire_without_touching_channel_arithmetic() {
    // Different arrangements on one shape: same channel-id space, same
    // per-class counts, different (or round-robin-default) global wiring.
    let cfg = TopologyConfig::canonical(2, 4, 2, 5);
    let mut tables = Vec::new();
    for arr in [
        GlobalArrangement::RoundRobin,
        GlobalArrangement::Consecutive,
        GlobalArrangement::PalmTree,
        GlobalArrangement::Random { seed: 1 },
    ] {
        let mut c = cfg.clone();
        c.arrangement = arr;
        let t = Topology::build(c);
        assert_eq!(
            t.channel_count(),
            Topology::build(cfg.clone()).channel_count()
        );
        tables.push(global_pairs(&t));
    }
    // Palm-tree and consecutive genuinely differ from round-robin here.
    assert_ne!(tables[0], tables[1]);
    assert_ne!(tables[0], tables[2]);
    assert_ne!(tables[1], tables[2]);
}
