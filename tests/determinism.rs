//! Whole-stack determinism: the study's config comparisons are only
//! meaningful if a config + seed pins every result bit.

use dragonfly_tradeoff::core::config::{
    AppSelection, BackgroundConfig, ExperimentConfig, Parallelism, RoutingPolicy,
};
use dragonfly_tradeoff::core::report::ConfigLabel;
use dragonfly_tradeoff::core::runner::run_experiment;
use dragonfly_tradeoff::core::sweep::run_config_grid;
use dragonfly_tradeoff::engine::{Ns, ToKv};
use dragonfly_tradeoff::placement::PlacementPolicy;
use dragonfly_tradeoff::stats::CsvWriter;
use dragonfly_tradeoff::workloads::BackgroundSpec;

fn cfg() -> ExperimentConfig {
    let mut c = ExperimentConfig::small_test();
    c.app = AppSelection::FillBoundary { ranks: 27 };
    c.placement = PlacementPolicy::RandomChassis;
    c.routing = RoutingPolicy::Adaptive;
    c.msg_scale = 0.3;
    c
}

#[test]
fn identical_runs_produce_identical_results() {
    let a = run_experiment(&cfg());
    let b = run_experiment(&cfg());
    assert_eq!(a.rank_comm_times, b.rank_comm_times);
    assert_eq!(a.rank_avg_hops, b.rank_avg_hops);
    assert_eq!(a.placement, b.placement);
    assert_eq!(a.events, b.events);
    let ta: Vec<_> = a.metrics.channels().map(|c| c.traffic_bytes).collect();
    let tb: Vec<_> = b.metrics.channels().map(|c| c.traffic_bytes).collect();
    assert_eq!(ta, tb);
}

#[test]
fn interference_runs_are_deterministic_too() {
    let mut c = cfg();
    c.app = AppSelection::Amg { ranks: 8 };
    c.background = Some(BackgroundConfig {
        spec: BackgroundSpec::uniform(32 * 1024, Ns::from_us(2), 0),
    });
    let a = run_experiment(&c);
    let b = run_experiment(&c);
    assert_eq!(a.rank_comm_times, b.rank_comm_times);
    assert_eq!(a.background_messages, b.background_messages);
    assert!(a.background_messages > 0);
}

#[test]
fn different_seed_different_random_placement_same_invariants() {
    let a = run_experiment(&cfg());
    let mut c2 = cfg();
    c2.seed = 0xDEAD_BEEF;
    let b = run_experiment(&c2);
    assert_ne!(a.placement, b.placement);
    // Invariants hold for both.
    for r in [&a, &b] {
        assert_eq!(r.rank_comm_times.len(), 27);
        assert!(r.job_end > Ns::ZERO);
    }
}

/// Render a full sweep's results the way the reproduction binaries do:
/// config echo, then one CSV row per grid cell with every per-rank value.
fn sweep_csv(cfg: &ExperimentConfig) -> Vec<u8> {
    let grid = run_config_grid(cfg, &ConfigLabel::all_ten());
    let mut w = CsvWriter::from_writer(
        Vec::new(),
        &[
            "config",
            "max_comm_ns",
            "total_traffic_bytes",
            "rank_comm_ns",
        ],
    )
    .unwrap();
    for cell in &grid {
        let ranks = cell
            .result
            .rank_comm_times
            .iter()
            .map(|t| t.0.to_string())
            .collect::<Vec<_>>()
            .join(";");
        let traffic: u64 = cell
            .result
            .metrics
            .channels()
            .map(|c| c.traffic_bytes)
            .sum();
        w.row(&[
            cell.label.to_string(),
            cell.result.max_comm_time().0.to_string(),
            traffic.to_string(),
            ranks,
        ])
        .unwrap();
    }
    let mut bytes = cfg.kv_echo().into_bytes();
    bytes.extend(w.finish().unwrap());
    bytes
}

/// The sweep runner fans simulations out over worker threads; a guard for
/// the `parking_lot` -> `std::sync::Mutex` rewrite that result order and
/// content stay independent of thread scheduling: two full sweeps with the
/// same seed must produce byte-identical CSV output.
#[test]
fn sweep_runs_produce_byte_identical_csv() {
    let mut c = cfg();
    c.msg_scale = 0.05; // keep the 10-cell grid fast
    let a = sweep_csv(&c);
    let b = sweep_csv(&c);
    assert!(!a.is_empty());
    assert_eq!(a, b, "two identically-seeded sweeps diverged");
}

#[test]
fn audited_runs_are_bit_identical_to_unaudited() {
    // The conservation auditor only *observes*: turning it on must not
    // perturb a single event, timestamp, or byte of the simulation.
    let mut audited = cfg();
    audited.network.audit = true;
    audited.background = Some(BackgroundConfig {
        spec: BackgroundSpec::bursty(128 * 1024, Ns::from_us(60), 4, 0),
    });
    let mut plain = audited.clone();
    plain.network.audit = false;

    let a = run_experiment(&audited);
    let p = run_experiment(&plain);
    assert!(a.audit.as_ref().expect("audit enabled").is_clean());
    assert!(p.audit.is_none());
    assert_eq!(a.rank_comm_times, p.rank_comm_times);
    assert_eq!(a.rank_avg_hops, p.rank_avg_hops);
    assert_eq!(a.placement, p.placement);
    assert_eq!(a.job_end, p.job_end);
    assert_eq!(a.events, p.events);
    assert_eq!(a.background_messages, p.background_messages);
    let ta: Vec<_> = a.metrics.channels().collect();
    let tp: Vec<_> = p.metrics.channels().collect();
    assert_eq!(ta, tp, "audited run perturbed channel metrics");
}

#[test]
fn observed_runs_are_bit_identical_to_unobserved() {
    // The telemetry layer (dfly-obs) must be a pure observer, exactly like
    // the auditor: profiling wall-clock, sweeping channel state, and
    // counting UGAL decisions may not perturb a single event, timestamp,
    // or byte of the simulation.
    let mut observed = cfg();
    observed.network.obs = true;
    observed.background = Some(BackgroundConfig {
        spec: BackgroundSpec::bursty(128 * 1024, Ns::from_us(60), 4, 0),
    });
    let mut plain = observed.clone();
    plain.network.obs = false;

    let o = run_experiment(&observed);
    let p = run_experiment(&plain);
    let report = o.obs.as_ref().expect("obs enabled");
    assert!(p.obs.is_none());
    // The samplers really ran (tamper check: an accidentally-disabled
    // collector would also pass the identity assertions below).
    assert_eq!(report.profile.total_events(), o.events);
    assert!(!report.series.samples().is_empty());
    assert!(report.vc_occupancy.readings > 0);
    for w in report.series.samples().windows(2) {
        assert!(w[1].at > w[0].at, "sample timestamps must be monotone");
    }
    assert!(report
        .series
        .samples()
        .iter()
        .all(|s| s.util.iter().all(|&u| (0.0..=1.0).contains(&u))));

    assert_eq!(o.rank_comm_times, p.rank_comm_times);
    assert_eq!(o.rank_avg_hops, p.rank_avg_hops);
    assert_eq!(o.placement, p.placement);
    assert_eq!(o.job_end, p.job_end);
    assert_eq!(o.events, p.events);
    assert_eq!(o.background_messages, p.background_messages);
    let to: Vec<_> = o.metrics.channels().collect();
    let tp: Vec<_> = p.metrics.channels().collect();
    assert_eq!(to, tp, "observed run perturbed channel metrics");
}

#[test]
fn observed_runs_are_bit_identical_at_every_stride() {
    // Stride-sampled profiling only changes *which* handler executions
    // get wall-clock timed — never the simulation. Every stride (and the
    // coarse clock) must reproduce the obs-off run bit for bit, while
    // still counting every event exactly.
    let plain = run_experiment(&cfg());
    for stride in [1u32, 7, 64, 1024] {
        let mut observed = cfg();
        observed.network.obs = true;
        observed.network.obs_stride = stride;
        observed.network.obs_coarse_clock = stride == 7; // one coarse run
        let o = run_experiment(&observed);
        let report = o.obs.as_ref().expect("obs enabled");
        assert_eq!(
            report.profile.total_events(),
            o.events,
            "stride {stride} must count every event"
        );
        assert!(
            report.profile.timed_events() > 0,
            "stride {stride} timed nothing"
        );
        if stride > 1 {
            assert!(
                report.profile.timed_events() < report.profile.total_events(),
                "stride {stride} should time a strict subset"
            );
        }
        assert_eq!(
            o.rank_comm_times, plain.rank_comm_times,
            "stride {stride} perturbed comm times"
        );
        assert_eq!(o.job_end, plain.job_end, "stride {stride} perturbed time");
        assert_eq!(o.events, plain.events, "stride {stride} perturbed events");
        let to: Vec<_> = o.metrics.channels().collect();
        let tp: Vec<_> = plain.metrics.channels().collect();
        assert_eq!(to, tp, "stride {stride} perturbed channel metrics");
    }
}

#[test]
fn observed_sweep_is_bit_identical_across_all_ten_configs() {
    // Whole-grid identity guard, obs-on vs obs-off: every placement x
    // routing cell must produce the identical simulation. (The config
    // *echo* legitimately differs — it records the obs flag — so this
    // compares the results, not `sweep_csv` bytes.)
    let mut with_obs = cfg();
    with_obs.msg_scale = 0.05;
    let mut without = with_obs.clone();
    with_obs.network.obs = true;
    without.network.obs = false;
    let go = run_config_grid(&with_obs, &ConfigLabel::all_ten());
    let gp = run_config_grid(&without, &ConfigLabel::all_ten());
    assert_eq!(go.len(), gp.len());
    for (o, p) in go.iter().zip(&gp) {
        assert_eq!(o.label, p.label);
        assert!(o.result.obs.is_some() && p.result.obs.is_none());
        assert_eq!(
            o.result.rank_comm_times, p.result.rank_comm_times,
            "telemetry perturbed cell {}",
            o.label
        );
        assert_eq!(o.result.events, p.result.events);
        assert_eq!(o.result.job_end, p.result.job_end);
        let to: Vec<_> = o.result.metrics.channels().collect();
        let tp: Vec<_> = p.result.metrics.channels().collect();
        assert_eq!(to, tp, "telemetry perturbed channels of {}", o.label);
    }
}

// ----- intra-run (PDES) worker-count matrix --------------------------------

/// Shard counts for the matrix tests; override with e.g.
/// `DFLY_DET_SHARDS=1,2,16`.
fn shard_matrix() -> Vec<u32> {
    std::env::var("DFLY_DET_SHARDS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect::<Vec<u32>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

/// Sweep worker counts for the matrix tests; override with e.g.
/// `DFLY_DET_SWEEP_WORKERS=1,4`.
fn sweep_worker_matrix() -> Vec<usize> {
    std::env::var("DFLY_DET_SWEEP_WORKERS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 8])
}

/// Everything a run pins, flattened for cross-worker-count comparison.
type RunFingerprint = (Vec<Ns>, Vec<u64>, u64, Vec<u64>);

fn fingerprint(r: &dragonfly_tradeoff::core::runner::ExperimentResult) -> RunFingerprint {
    (
        r.rank_comm_times.clone(),
        r.rank_avg_hops.iter().map(|h| h.to_bits()).collect(),
        r.events,
        r.metrics.channels().map(|c| c.traffic_bytes).collect(),
    )
}

/// The partition is per *group*, so the worker count only redistributes
/// replicas over threads: every shard count must produce the identical
/// bytes, with the auditor running and clean.
#[test]
fn all_ten_grid_identical_at_every_shard_count_audit_on() {
    let mut base = cfg();
    base.msg_scale = 0.05;
    base.network.audit = true;
    let mut reference: Option<Vec<RunFingerprint>> = None;
    for shards in shard_matrix() {
        let mut c = base.clone();
        c.parallelism = Parallelism::IntraRun(shards);
        let grid = run_config_grid(&c, &ConfigLabel::all_ten());
        for cell in &grid {
            let audit = cell.result.audit.as_ref().expect("audit on");
            assert!(audit.is_clean(), "shards={shards} {}:\n{audit}", cell.label);
        }
        let snap: Vec<RunFingerprint> = grid.iter().map(|c| fingerprint(&c.result)).collect();
        match &reference {
            None => reference = Some(snap),
            Some(r) => assert_eq!(r, &snap, "shards={shards} changed the grid"),
        }
    }
}

/// A Theta-machine run (the paper's scale) through the same matrix, with
/// telemetry on: the merged obs report must also be byte-stable.
#[test]
fn theta_run_identical_at_every_shard_count_obs_on() {
    let mut base = ExperimentConfig::theta(dragonfly_tradeoff::workloads::AppKind::CrystalRouter);
    base.app = AppSelection::CrystalRouter { ranks: 128 };
    base.msg_scale = 0.2;
    base.placement = PlacementPolicy::RandomNode;
    base.routing = RoutingPolicy::Adaptive;
    base.network.obs = true;
    let mut reference: Option<RunFingerprint> = None;
    for shards in shard_matrix() {
        let mut c = base.clone();
        c.parallelism = Parallelism::IntraRun(shards);
        let r = run_experiment(&c);
        let obs = r.obs.as_ref().expect("obs on");
        assert_eq!(obs.profile.total_events(), r.events, "shards={shards}");
        assert!(!obs.series.samples().is_empty());
        let snap = fingerprint(&r);
        match &reference {
            None => reference = Some(snap),
            Some(f) => assert_eq!(f, &snap, "shards={shards} changed the Theta run"),
        }
    }
}

/// A canonic (p,a,h,g) machine with non-default palm-tree wiring through
/// the PDES matrix (the ISSUE's shards-1-vs-4 entry): the group-sharded
/// engine must be arrangement- and shape-agnostic, byte-identical across
/// worker counts, with the auditor clean.
#[test]
fn canonic_palm_tree_run_identical_at_shards_1_and_4() {
    use dragonfly_tradeoff::topology::{GlobalArrangement, TopologyConfig};
    let mut base = ExperimentConfig::theta(dragonfly_tradeoff::workloads::AppKind::CrystalRouter);
    base.topology = TopologyConfig::canonical(2, 8, 4, 17);
    base.topology.arrangement = GlobalArrangement::PalmTree;
    base.app = AppSelection::CrystalRouter { ranks: 64 };
    base.placement = PlacementPolicy::RandomNode;
    base.routing = RoutingPolicy::Adaptive;
    base.msg_scale = 0.2;
    base.network.audit = true;
    let mut reference: Option<RunFingerprint> = None;
    for shards in [1u32, 4] {
        let mut c = base.clone();
        c.parallelism = Parallelism::IntraRun(shards);
        let r = run_experiment(&c);
        let audit = r.audit.as_ref().expect("audit on");
        assert!(audit.is_clean(), "shards={shards}:\n{audit}");
        let snap = fingerprint(&r);
        match &reference {
            None => reference = Some(snap),
            Some(f) => assert_eq!(f, &snap, "shards={shards} changed the canonic run"),
        }
    }
}

/// Sweep-level fan-out is the other worker axis: the grid's bytes must
/// not depend on `DFLY_SWEEP_WORKERS`. (Concurrent tests may observe the
/// variable mid-matrix; that is harmless — worker count never affects
/// results, which is exactly what this test pins.)
#[test]
fn sweep_grid_identical_at_every_worker_count() {
    let mut c = cfg();
    c.msg_scale = 0.05;
    let mut reference: Option<Vec<u8>> = None;
    for workers in sweep_worker_matrix() {
        std::env::set_var("DFLY_SWEEP_WORKERS", workers.to_string());
        let bytes = sweep_csv(&c);
        std::env::remove_var("DFLY_SWEEP_WORKERS");
        match &reference {
            None => reference = Some(bytes),
            Some(r) => assert_eq!(r, &bytes, "workers={workers} changed sweep bytes"),
        }
    }
}

// ----- streaming-metrics matrix --------------------------------------------

/// Byte-level fingerprint of a streaming run's link digest: per class,
/// the reservoir's retained values plus the summary counters.
fn digest_fingerprint(r: &dragonfly_tradeoff::core::runner::ExperimentResult) -> Vec<Vec<u64>> {
    let digest = r
        .obs
        .as_ref()
        .expect("obs on")
        .link_digest
        .as_ref()
        .expect("streaming digest");
    (0..5)
        .map(|c| {
            let cd = digest.class(c);
            let mut v: Vec<u64> = cd.traffic_mb.values().iter().map(|x| x.to_bits()).collect();
            v.push(cd.traffic_bytes.count());
            v.push(cd.traffic_bytes.sum().to_bits());
            v.push(cd.saturated_ms.count());
            v.push(cd.saturated_ms.sum().to_bits());
            v
        })
        .collect()
}

/// The ISSUE's streaming matrix: with obs + audit on, streaming-metrics
/// runs must (a) leave every simulation output bit-identical to a dense
/// twin *at the same execution mode* (the sharded schedule is a
/// documented modeling deviation from the serial loop, so each
/// parallelism gets its own twin), (b) reproduce byte-identically across
/// two runs — digest included — at serial, 1-worker, and 4-worker
/// execution, and (c) be worker-count-invariant among the sharded runs
/// (per-group replicas make the digest partition fixed; workers only
/// redistribute threads).
#[test]
fn streaming_runs_byte_identical_at_shards_1_and_4_with_obs_and_audit() {
    use dragonfly_tradeoff::network::MetricsMode;
    let mut base = cfg();
    base.msg_scale = 0.2;
    base.network.obs = true;
    base.network.audit = true;
    base.network.metrics = MetricsMode::Streaming { reservoir_k: 64 };

    let mut sharded_reference: Option<(RunFingerprint, Vec<Vec<u64>>)> = None;
    for shards in [None, Some(1u32), Some(4u32)] {
        let mut c = base.clone();
        if let Some(n) = shards {
            c.parallelism = Parallelism::IntraRun(n);
        }
        let mut dense = c.clone();
        dense.network.metrics = MetricsMode::Dense;
        let d = run_experiment(&dense);
        assert!(d.obs.as_ref().expect("obs on").link_digest.is_none());

        let a = run_experiment(&c);
        let b = run_experiment(&c);
        assert!(a.audit.as_ref().expect("audit on").is_clean());

        // Two-run byte-identity, streaming structures included.
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{shards:?} two-run identity"
        );
        let da = digest_fingerprint(&a);
        assert_eq!(da, digest_fingerprint(&b), "{shards:?} digest identity");
        assert!(da.iter().any(|c| !c.is_empty()), "digest never fed");

        // Simulation outputs are metrics-mode-independent.
        assert_eq!(a.rank_comm_times, d.rank_comm_times, "{shards:?} vs dense");
        assert_eq!(a.job_end, d.job_end);
        assert_eq!(a.events, d.events);
        let ta: Vec<_> = a.metrics.channels().collect();
        let td: Vec<_> = d.metrics.channels().collect();
        assert_eq!(ta, td, "{shards:?} perturbed channel metrics");

        // Sharded runs also pin the digest across worker counts. (The
        // serial path digests with a single reservoir stream, so its
        // retained sample legitimately differs from the per-group merge.)
        if shards.is_some() {
            let snap = (fingerprint(&a), da);
            match &sharded_reference {
                None => sharded_reference = Some(snap),
                Some(r) => assert_eq!(r, &snap, "{shards:?} changed the sharded run"),
            }
        }
    }
}

#[test]
fn seed_streams_are_independent() {
    // Changing only the routing policy must not change the placement
    // (each subsystem derives its own RNG stream from the master seed).
    let min = {
        let mut c = cfg();
        c.routing = RoutingPolicy::Minimal;
        run_experiment(&c)
    };
    let adp = run_experiment(&cfg());
    assert_eq!(min.placement, adp.placement);
}
