//! End-to-end integration: the three applications across the full stack
//! (topology -> placement -> workload -> network -> MPI engine -> metrics).

use dragonfly_tradeoff::core::config::{AppSelection, ExperimentConfig, RoutingPolicy};
use dragonfly_tradeoff::core::runner::run_experiment;
use dragonfly_tradeoff::engine::Ns;
use dragonfly_tradeoff::network::MetricsFilter;
use dragonfly_tradeoff::placement::PlacementPolicy;

fn base(app: AppSelection) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small_test();
    cfg.app = app;
    cfg.msg_scale = 0.2;
    cfg
}

#[test]
fn cr_runs_under_every_config() {
    for placement in PlacementPolicy::ALL {
        for routing in [RoutingPolicy::Minimal, RoutingPolicy::Adaptive] {
            let mut cfg = base(AppSelection::CrystalRouter { ranks: 24 });
            cfg.placement = placement;
            cfg.routing = routing;
            let r = run_experiment(&cfg);
            assert_eq!(r.rank_comm_times.len(), 24);
            assert!(
                r.rank_comm_times.iter().all(|&t| t > Ns::ZERO),
                "{placement:?}/{routing:?}"
            );
        }
    }
}

#[test]
fn fb_and_amg_complete_with_positive_metrics() {
    for app in [
        AppSelection::FillBoundary { ranks: 27 },
        AppSelection::Amg { ranks: 27 },
    ] {
        let r = run_experiment(&base(app));
        assert!(r.job_end > Ns::ZERO);
        assert!(r.events > 1000);
        assert!(r.mean_hops() >= 0.0);
        let all = MetricsFilter::All;
        let traffic: f64 = r.metrics.local_traffic(&all).iter().sum();
        assert!(traffic > 0.0, "{app:?} moved no local traffic");
    }
}

#[test]
fn comm_time_stats_consistent_with_raw_times() {
    let r = run_experiment(&base(AppSelection::CrystalRouter { ranks: 16 }));
    let stats = r.comm_time_stats();
    let times = r.comm_times_ms();
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!((stats.max - max).abs() < 1e-9);
    assert!((stats.min - min).abs() < 1e-9);
    assert_eq!(stats.n, 16);
    assert_eq!(r.max_comm_time().as_ms_f64(), max);
}

#[test]
fn app_filter_restricts_channel_population() {
    let mut cfg = base(AppSelection::Amg { ranks: 8 });
    cfg.placement = PlacementPolicy::Contiguous;
    let r = run_experiment(&cfg);
    let all_local = r.metrics.local_traffic(&MetricsFilter::All).len();
    let app_local = r.metrics.local_traffic(&r.app_filter()).len();
    // 8 contiguous ranks sit on 4 routers of 32: the app view is a strict
    // subset of the machine view.
    assert!(app_local < all_local);
    assert!(app_local > 0);
}

#[test]
fn traffic_scales_with_message_size() {
    let small = run_experiment(&base(AppSelection::FillBoundary { ranks: 8 }));
    let mut big_cfg = base(AppSelection::FillBoundary { ranks: 8 });
    big_cfg.msg_scale = 0.8;
    let big = run_experiment(&big_cfg);
    let all = MetricsFilter::All;
    let t_small: f64 = small.metrics.local_traffic(&all).iter().sum::<f64>()
        + small.metrics.global_traffic(&all).iter().sum::<f64>();
    let t_big: f64 = big.metrics.local_traffic(&all).iter().sum::<f64>()
        + big.metrics.global_traffic(&all).iter().sum::<f64>();
    let ratio = t_big / t_small;
    assert!(
        ratio > 3.0 && ratio < 5.0,
        "4x message scale should give ~4x traffic, got {ratio:.2}x"
    );
}

#[test]
fn job_end_equals_slowest_rank() {
    let r = run_experiment(&base(AppSelection::CrystalRouter { ranks: 16 }));
    assert_eq!(r.job_end, r.max_comm_time());
}
