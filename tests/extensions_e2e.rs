//! Integration tests for the reproduction's extension features: synthetic
//! patterns, Valiant routing, multi-job co-runs, the load sampler, and the
//! imbalance statistics — all through the public facade.

use dragonfly_tradeoff::core::config::RoutingPolicy;
use dragonfly_tradeoff::core::mpi::MultiDriver;
use dragonfly_tradeoff::core::multijob::{run_multijob, JobSpec, MultiJobConfig};
use dragonfly_tradeoff::core::validate::{run_bisection, run_pingpong};
use dragonfly_tradeoff::engine::{Ns, Xoshiro256};
use dragonfly_tradeoff::network::{MetricsFilter, Network, NetworkParams, Routing};
use dragonfly_tradeoff::placement::{NodePool, PlacementPolicy};
use dragonfly_tradeoff::prelude::*;
use dragonfly_tradeoff::stats::gini;
use dragonfly_tradeoff::topology::Topology;
use dragonfly_tradeoff::workloads::{generate_pattern, Pattern, PatternSpec};
use std::sync::Arc;

fn topo() -> Arc<Topology> {
    Arc::new(Topology::build(TopologyConfig::small_test()))
}

fn run_pattern(pattern: Pattern, placement: PlacementPolicy, routing: Routing) -> (Ns, f64) {
    let t = topo();
    let trace = generate_pattern(&PatternSpec {
        pattern,
        ranks: 32,
        bytes_per_phase: 128 * 1024,
        phases: 3,
        seed: 5,
    });
    let mut pool = NodePool::new(&t);
    let mut rng = Xoshiro256::seed_from(9);
    let nodes = placement.allocate(&t, &mut pool, 32, &mut rng).unwrap();
    let mut net = Network::new(t, NetworkParams::default(), routing, 3);
    let result =
        dragonfly_tradeoff::core::mpi::MpiDriver::new(&mut net, &trace, &nodes, None).run();
    let g = gini(&net.metrics().global_traffic(&MetricsFilter::All));
    (result.job_end, g)
}

#[test]
fn every_pattern_completes_under_every_routing() {
    for pattern in Pattern::ALL {
        for routing in [Routing::Minimal, Routing::Adaptive, Routing::Valiant] {
            let (end, _) = run_pattern(pattern, PlacementPolicy::RandomNode, routing);
            assert!(end > Ns::ZERO, "{pattern:?}/{routing:?}");
        }
    }
}

#[test]
fn valiant_balances_shift_traffic_better_than_minimal() {
    // Shift is the adversarial pattern for minimal routing: with
    // contiguous placement all traffic targets one group pair. Valiant
    // spreads it over intermediates — its raison d'etre.
    let (_, g_min) = run_pattern(
        Pattern::Shift,
        PlacementPolicy::Contiguous,
        Routing::Minimal,
    );
    let (_, g_val) = run_pattern(
        Pattern::Shift,
        PlacementPolicy::Contiguous,
        Routing::Valiant,
    );
    assert!(
        g_val < g_min,
        "valiant global-traffic gini {g_val:.3} !< minimal {g_min:.3}"
    );
}

#[test]
fn multijob_through_facade() {
    let cfg = MultiJobConfig {
        topology: TopologyConfig::small_test(),
        network: NetworkParams::default(),
        routing: RoutingPolicy::Adaptive,
        jobs: vec![
            JobSpec {
                app: AppSelection::CrystalRouter { ranks: 16 },
                placement: PlacementPolicy::RandomNode,
                msg_scale: 0.3,
            },
            JobSpec {
                app: AppSelection::Amg { ranks: 16 },
                placement: PlacementPolicy::RandomNode,
                msg_scale: 0.3,
            },
        ],
        seed: 1,
    };
    let r = run_multijob(&cfg);
    assert_eq!(r.jobs.len(), 2);
    assert!(r.makespan >= r.jobs[0].result.job_end);
    assert!(r.makespan >= r.jobs[1].result.job_end);
    // Per-job router sets are small subsets of the machine.
    assert!(r.jobs[0].routers.len() <= 16);
    let stats = r.jobs[0].comm_time_stats();
    assert!(stats.max >= stats.min);
}

#[test]
fn load_sampler_tracks_a_run() {
    let t = topo();
    let trace = generate_pattern(&PatternSpec {
        pattern: Pattern::AllToAll,
        ranks: 24,
        bytes_per_phase: 256 * 1024,
        phases: 2,
        seed: 8,
    });
    let nodes: Vec<_> = (0..24).map(dragonfly_tradeoff::topology::NodeId).collect();
    let mut net = Network::new(t, NetworkParams::default(), Routing::Minimal, 5);
    let (results, series) = MultiDriver::new(&mut net, &[(&trace, &nodes)], None)
        .with_sampler(Ns::from_us(2))
        .run_with_series();
    assert!(series.peak_queued() > 0);
    // The gauge must end near zero: the network drained.
    assert!(net.total_queued_bytes() == 0);
    assert!(results[0].job_end > *series.times.first().unwrap());
}

#[test]
fn pingpong_validation_within_codes_bar_on_theta_shape() {
    let r = run_pingpong(
        &TopologyConfig::quick(),
        NetworkParams::default(),
        190 * 1024,
    );
    assert!(
        r.relative_error < 0.08,
        "ping-pong error {:.2}%",
        100.0 * r.relative_error
    );
}

#[test]
fn bisection_efficiency_reasonable_on_small_machine() {
    let r = run_bisection(
        &TopologyConfig::small_test(),
        NetworkParams::default(),
        512 * 1024,
        Routing::Minimal,
    );
    assert!(r.efficiency > 0.4 && r.efficiency <= 1.001, "{:?}", r);
}

#[test]
fn utilization_metric_spans_zero_to_busy() {
    let mut cfg = ExperimentConfig::small_test();
    cfg.app = AppSelection::FillBoundary { ranks: 27 };
    cfg.placement = PlacementPolicy::Contiguous;
    let r = run_experiment(&cfg);
    let u = r.metrics.utilization(
        dragonfly_tradeoff::topology::ChannelClass::LocalRow,
        r.job_end,
    );
    assert!(!u.is_empty());
    assert!(u.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)));
    // Contiguous FB leaves remote rows idle and hammers local ones.
    assert!(u.iter().any(|&x| x == 0.0));
    assert!(u.iter().any(|&x| x > 0.1));
}

#[test]
fn gini_separates_contiguous_from_random_node() {
    let run = |placement| {
        let mut cfg = ExperimentConfig::small_test();
        cfg.app = AppSelection::FillBoundary { ranks: 27 };
        cfg.placement = placement;
        let r = run_experiment(&cfg);
        gini(&r.metrics.local_traffic(&MetricsFilter::All))
    };
    let cont = run(PlacementPolicy::Contiguous);
    let rand = run(PlacementPolicy::RandomNode);
    assert!(
        cont > rand,
        "contiguous local-traffic gini {cont:.3} !> random {rand:.3}"
    );
}
