//! Golden-run regression suite: the figure pipelines, end to end, against
//! committed reference CSVs.
//!
//! Each test drives a real reproduction pipeline **in-process** (the same
//! `dfly_bench::figures` code the binaries call) at `--quick --scale 0.05`
//! with the default seed (0x5EED), then compares the produced CSV
//! **byte-for-byte** against the golden copy in `tests/golden/`. Any
//! behavioral drift anywhere in the stack — engine event ordering, routing
//! scores, placement draws, workload traces, stats formatting — shows up
//! as a byte diff here before it can silently reshape a figure.
//!
//! ## Updating the goldens
//!
//! When a change *intentionally* alters results (a model fix, a new
//! default), regenerate the references and commit the diff:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test golden_figures
//! git diff tests/golden/   # review: every changed number is a changed result
//! ```
//!
//! The tests never write to `tests/golden/` unless `UPDATE_GOLDENS=1` is
//! set, and they fail (not update) on any mismatch otherwise.

use dfly_bench::figures;
use dfly_bench::{Mode, RunArgs};
use std::path::{Path, PathBuf};

/// The scale keeping a full ten-config grid per app affordable in a debug
/// test run while still exercising every pipeline stage.
const GOLDEN_SCALE: f64 = 0.05;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn run_args(out_tag: &str) -> RunArgs {
    let out = std::env::temp_dir().join(format!("dfly_golden_{out_tag}"));
    let _ = std::fs::remove_dir_all(&out);
    let mut args = RunArgs::new(Mode::Quick, out);
    args.scale = GOLDEN_SCALE;
    args
}

/// Byte-for-byte comparison of a produced CSV against its golden copy,
/// or regeneration under `UPDATE_GOLDENS=1`.
fn assert_matches_golden(produced: &Path, name: &str) {
    let produced_bytes =
        std::fs::read(produced).unwrap_or_else(|e| panic!("pipeline wrote no {produced:?}: {e}"));
    let golden_path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&golden_path, &produced_bytes).unwrap();
        eprintln!("updated golden {golden_path:?}");
        return;
    }
    let golden_bytes = std::fs::read(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden {golden_path:?} ({e}); \
             run `UPDATE_GOLDENS=1 cargo test --test golden_figures` and commit it"
        )
    });
    if produced_bytes != golden_bytes {
        // Find the first differing line for a readable failure.
        let produced_text = String::from_utf8_lossy(&produced_bytes);
        let golden_text = String::from_utf8_lossy(&golden_bytes);
        let mut detail = String::from("(no line-level diff: lengths differ in trailing data)");
        for (i, (p, g)) in produced_text.lines().zip(golden_text.lines()).enumerate() {
            if p != g {
                detail = format!(
                    "first diff at line {}:\n  golden:   {g}\n  produced: {p}",
                    i + 1
                );
                break;
            }
        }
        panic!(
            "{name} drifted from the golden reference ({} vs {} bytes)\n{detail}\n\
             If this change is intentional, regenerate with \
             `UPDATE_GOLDENS=1 cargo test --test golden_figures` and commit the diff.",
            produced_bytes.len(),
            golden_bytes.len(),
        );
    }
}

#[test]
fn fig3_pipeline_matches_golden() {
    let args = run_args("fig3");
    figures::fig3(&args);
    assert_matches_golden(
        &args.out_dir.join("fig3_comm_time.csv"),
        "fig3_comm_time.csv",
    );
    let _ = std::fs::remove_dir_all(&args.out_dir);
}

/// The streaming-metrics fig3 pipeline cannot be compared against the
/// dense goldens (its CDF sinks legitimately retain a reservoir subset),
/// but it must still be perfectly reproducible: two runs with the same
/// seed — telemetry on, so the obs sinks and the link digest are in play
/// — must produce byte-identical copies of every CSV artifact.
#[test]
fn fig3_streaming_pipeline_is_byte_reproducible() {
    use dfly_obs::MetricsMode;
    let run = |tag: &str| {
        let mut args = run_args(tag);
        args.obs = true;
        args.metrics = Some(MetricsMode::Streaming { reservoir_k: 64 });
        figures::fig3(&args);
        args.out_dir
    };
    let a = run("fig3_stream_a");
    let b = run("fig3_stream_b");
    let mut names: Vec<String> = std::fs::read_dir(&a)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        // The event-loop profile reports wall-clock throughput
        // (`events_per_sec`), which legitimately varies run to run;
        // every other sink is pure simulated-time data.
        .filter(|n| !n.starts_with("obs_profile"))
        .collect();
    names.sort();
    assert!(
        names.iter().any(|n| n.starts_with("obs_link_digest")),
        "streaming digest sink missing: {names:?}"
    );
    for name in &names {
        let ba = std::fs::read(a.join(name)).unwrap();
        let bb = std::fs::read(b.join(name))
            .unwrap_or_else(|e| panic!("second run did not write {name}: {e}"));
        assert_eq!(ba, bb, "{name} differs between identically-seeded runs");
    }
    let _ = std::fs::remove_dir_all(&a);
    let _ = std::fs::remove_dir_all(&b);
}

#[test]
fn table2_pipeline_matches_golden() {
    let args = run_args("table2");
    figures::table2(&args);
    assert_matches_golden(
        &args.out_dir.join("table2_background_load.csv"),
        "table2_background_load.csv",
    );
    let _ = std::fs::remove_dir_all(&args.out_dir);
}
