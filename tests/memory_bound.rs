//! Memory-bound regression: streaming metric structures must stop
//! growing once they hit their caps, no matter how long the run gets.
//!
//! Drives a `Network` directly on the 64-node test machine with
//! telemetry and a traffic timeline on, long enough that every bounded
//! structure has saturated (sample series past its coarsening cap,
//! timeline past its bin cap), then runs ten times longer and asserts
//! the metric-structure footprint did not move while the event count
//! grew ~10x. The dense twin runs the same loads and demonstrates the
//! growth streaming mode exists to remove.

use dragonfly_tradeoff::engine::Ns;
use dragonfly_tradeoff::network::{MetricsMode, Network, NetworkParams, Routing};
use dragonfly_tradeoff::topology::{NodeId, Topology, TopologyConfig};
use std::sync::Arc;

/// Messages per run unit: one message every telemetry interval (50 µs),
/// so `rounds` is also the number of sample windows the collector sees.
fn run_rounds(metrics: MetricsMode, rounds: u64) -> (u64, usize) {
    let topo = Arc::new(Topology::build(TopologyConfig::small_test()));
    let mut params = NetworkParams::default();
    params.obs = true;
    params.audit = false;
    params.metrics = metrics;
    let mut net = Network::new(topo, params, Routing::Adaptive, 7);
    net.enable_traffic_timeline(Ns::from_us(10));
    for i in 0..rounds {
        net.send(
            Ns(i * 50_000),
            NodeId((i % 8) as u32),
            NodeId(32 + (i % 8) as u32),
            4096,
            i,
        );
    }
    net.run_to_idle();
    let report = net.obs_report().expect("obs on");
    assert!(!report.series.samples().is_empty());
    (net.events_processed(), net.metric_bytes_approx())
}

#[test]
fn streaming_footprint_constant_while_events_grow_10x() {
    // 8192 rounds push the 4096-cap sample series into coarsening and
    // the 512-bin timeline well past its first width doubling; 81920
    // rounds are ~10x the events on the same saturated structures.
    let k = MetricsMode::Streaming { reservoir_k: 64 };
    let (events_1x, bytes_1x) = run_rounds(k, 8_192);
    let (events_10x, bytes_10x) = run_rounds(k, 81_920);
    assert!(
        events_10x >= 8 * events_1x,
        "long run only grew events {events_1x} -> {events_10x}"
    );
    assert_eq!(
        bytes_1x, bytes_10x,
        "streaming metric footprint moved: {bytes_1x} -> {bytes_10x} bytes \
         over a ~10x event-count increase"
    );
}

#[test]
fn dense_footprint_grows_with_run_length() {
    // The contrast case: dense structures (exact sample series, exact
    // timeline bins) scale with run duration. If this ever stops
    // holding, the streaming test above is probably testing nothing.
    let (_, bytes_1x) = run_rounds(MetricsMode::Dense, 8_192);
    let (_, bytes_10x) = run_rounds(MetricsMode::Dense, 81_920);
    assert!(
        bytes_10x > 4 * bytes_1x,
        "dense metrics no longer grow with the run ({bytes_1x} -> {bytes_10x} bytes); \
         update the streaming memory-bound test"
    );
}
