//! Property-based tests over the core invariants:
//!
//! * the network always drains (deadlock freedom of the ascending-VC
//!   discipline) and delivers every message exactly once;
//! * placement policies return exactly-sized, duplicate-free allocations;
//! * generated traces are structurally valid and scale linearly;
//! * CDF/summary statistics agree with naive reference implementations.

use dragonfly_tradeoff::engine::{Ns, Xoshiro256};
use dragonfly_tradeoff::network::{Network, NetworkParams, Routing};
use dragonfly_tradeoff::placement::{NodePool, PlacementPolicy};
use dragonfly_tradeoff::stats::{BoxStats, Cdf};
use dragonfly_tradeoff::topology::{NodeId, Topology, TopologyConfig};
use dragonfly_tradeoff::workloads::{generate, AppKind, WorkloadSpec};
use proptest::prelude::*;
use std::sync::Arc;

fn small_topo() -> Arc<Topology> {
    Arc::new(Topology::build(TopologyConfig::small_test()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Adversarial random traffic always drains and conserves messages —
    /// the deadlock-freedom property of the VC discipline.
    #[test]
    fn network_always_drains(
        seed in any::<u64>(),
        n_msgs in 1usize..120,
        routing in prop_oneof![Just(Routing::Minimal), Just(Routing::Adaptive)],
    ) {
        let topo = small_topo();
        let nodes = topo.config().total_nodes() as u64;
        let mut net = Network::new(topo, NetworkParams::default(), routing, seed);
        let mut rng = Xoshiro256::seed_from(seed ^ 0xABCD);
        for i in 0..n_msgs {
            let src = NodeId(rng.next_below(nodes) as u32);
            let dst = NodeId(rng.next_below(nodes) as u32);
            let bytes = rng.range_inclusive(0, 100_000);
            let at = Ns(rng.next_below(50_000));
            net.send(at, src, dst, bytes, i as u64);
        }
        let mut delivered = std::collections::HashSet::new();
        while let Some(d) = net.poll_delivery() {
            prop_assert!(delivered.insert(d.tag), "duplicate delivery {}", d.tag);
            prop_assert!(d.completed_at >= d.injected_at);
            prop_assert!(d.avg_hops <= 10.0);
        }
        prop_assert_eq!(delivered.len(), n_msgs);
        prop_assert!(net.is_idle());
    }

    /// Small random VC buffers still cannot deadlock the network.
    #[test]
    fn network_drains_with_tight_buffers(
        seed in any::<u64>(),
        packet_kb in 1u32..4,
    ) {
        let topo = small_topo();
        let params = NetworkParams {
            packet_size: packet_kb * 1024,
            terminal_vc_bytes: (packet_kb as u64) * 1024,
            local_vc_bytes: (packet_kb as u64) * 1024,
            global_vc_bytes: (packet_kb as u64) * 1024,
            ..NetworkParams::default()
        };
        let nodes = topo.config().total_nodes() as u64;
        let mut net = Network::new(topo, params, Routing::Adaptive, seed);
        let mut rng = Xoshiro256::seed_from(seed);
        for i in 0..80u64 {
            let src = NodeId(rng.next_below(nodes) as u32);
            let dst = NodeId(rng.next_below(nodes) as u32);
            net.send(Ns::ZERO, src, dst, 40_000, i);
        }
        let mut count = 0;
        while net.poll_delivery().is_some() {
            count += 1;
        }
        prop_assert_eq!(count, 80);
    }

    /// Every placement policy returns exactly `size` distinct free nodes.
    #[test]
    fn placements_exact_and_distinct(
        seed in any::<u64>(),
        size in 1u32..64,
        policy_idx in 0usize..5,
    ) {
        let topo = small_topo();
        let policy = PlacementPolicy::ALL[policy_idx];
        let mut pool = NodePool::new(&topo);
        let mut rng = Xoshiro256::seed_from(seed);
        let nodes = policy.allocate(&topo, &mut pool, size, &mut rng).unwrap();
        prop_assert_eq!(nodes.len(), size as usize);
        let set: std::collections::HashSet<_> = nodes.iter().collect();
        prop_assert_eq!(set.len(), size as usize);
        prop_assert_eq!(pool.free_count(), 64 - size);
    }

    /// Trace generation is valid for arbitrary rank counts and scales,
    /// and total bytes scale linearly with msg_scale.
    #[test]
    fn traces_valid_and_scale_linearly(
        ranks in 2u32..80,
        scale_pct in 10u32..300,
        kind_idx in 0usize..3,
    ) {
        let kind = [AppKind::CrystalRouter, AppKind::FillBoundary, AppKind::Amg][kind_idx];
        let spec = WorkloadSpec { kind, ranks, msg_scale: 1.0, seed: 77 };
        let base = generate(&spec);
        prop_assert!(base.validate().is_ok());
        let scaled = generate(&WorkloadSpec {
            msg_scale: scale_pct as f64 / 100.0,
            ..spec
        });
        let ratio = scaled.total_bytes() as f64 / base.total_bytes() as f64;
        let expected = scale_pct as f64 / 100.0;
        prop_assert!((ratio / expected - 1.0).abs() < 0.02,
            "scaling ratio {ratio} vs expected {expected}");
    }

    /// BoxStats quartiles bracket each other and bound the data for any
    /// input.
    #[test]
    fn boxstats_ordering(data in prop::collection::vec(0.0f64..1e9, 1..200)) {
        let s = BoxStats::from_samples(&data).unwrap();
        prop_assert!(s.min <= s.q1);
        prop_assert!(s.q1 <= s.median);
        prop_assert!(s.median <= s.q3);
        prop_assert!(s.q3 <= s.max);
        prop_assert!(s.mean >= s.min && s.mean <= s.max);
    }

    /// A CDF is a proper distribution function: monotone, ends at 100%,
    /// quantile inverts fraction lookups.
    #[test]
    fn cdf_is_monotone_distribution(data in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let cdf = Cdf::from_samples(data.clone());
        let steps = cdf.steps();
        prop_assert_eq!(steps.len(), data.len());
        let mut prev = (f64::NEG_INFINITY, 0.0);
        for &(x, p) in &steps {
            prop_assert!(x >= prev.0);
            prop_assert!(p >= prev.1);
            prev = (x, p);
        }
        prop_assert!((steps.last().unwrap().1 - 100.0).abs() < 1e-9);
        // quantile(fraction_at_or_below(x)) <= max and >= min for any x.
        let q = cdf.quantile(0.5);
        prop_assert!(q >= cdf.min().unwrap() && q <= cdf.max().unwrap());
    }
}
