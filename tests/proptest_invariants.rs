//! Property-based tests over the core invariants:
//!
//! * the network always drains (deadlock freedom of the ascending-VC
//!   discipline) and delivers every message exactly once;
//! * placement policies return exactly-sized, duplicate-free allocations;
//! * generated traces are structurally valid and scale linearly;
//! * CDF/summary statistics agree with naive reference implementations.
//!
//! Runs on the in-tree harness (`dfly_engine::proptest`) — no external
//! crates.

use dragonfly_tradeoff::engine::proptest::{check, check_with_shrink, gen, shrink, Config};
use dragonfly_tradeoff::engine::{Ns, Xoshiro256};
use dragonfly_tradeoff::network::{Network, NetworkParams, Routing};
use dragonfly_tradeoff::placement::{NodePool, PlacementPolicy};
use dragonfly_tradeoff::stats::{BoxStats, Cdf};
use dragonfly_tradeoff::topology::{NodeId, Topology, TopologyConfig};
use dragonfly_tradeoff::workloads::{generate, AppKind, WorkloadSpec};
use std::sync::Arc;

fn small_topo() -> Arc<Topology> {
    Arc::new(Topology::build(TopologyConfig::small_test()))
}

/// Adversarial random traffic always drains and conserves messages —
/// the deadlock-freedom property of the VC discipline.
#[test]
fn network_always_drains() {
    let topo = small_topo();
    check(
        "network_always_drains",
        &Config::with_cases(24),
        |rng| {
            let seed = rng.next_u64();
            let n_msgs = rng.range_inclusive(1, 119) as usize;
            let routing = *rng.choose(&[Routing::Minimal, Routing::Adaptive]);
            (seed, n_msgs, routing)
        },
        |&(seed, n_msgs, routing)| {
            let nodes = topo.config().total_nodes() as u64;
            let mut net = Network::new(topo.clone(), NetworkParams::default(), routing, seed);
            let mut rng = Xoshiro256::seed_from(seed ^ 0xABCD);
            for i in 0..n_msgs {
                let src = NodeId(rng.next_below(nodes) as u32);
                let dst = NodeId(rng.next_below(nodes) as u32);
                let bytes = rng.range_inclusive(0, 100_000);
                let at = Ns(rng.next_below(50_000));
                net.send(at, src, dst, bytes, i as u64);
            }
            let mut delivered = std::collections::HashSet::new();
            while let Some(d) = net.poll_delivery() {
                if !delivered.insert(d.tag) {
                    return Err(format!("duplicate delivery {}", d.tag));
                }
                if d.completed_at < d.injected_at {
                    return Err(format!("delivery {} completed before injection", d.tag));
                }
                if d.avg_hops > 10.0 {
                    return Err(format!("delivery {} took {} hops", d.tag, d.avg_hops));
                }
            }
            if delivered.len() != n_msgs {
                return Err(format!("delivered {} of {n_msgs}", delivered.len()));
            }
            if !net.is_idle() {
                return Err("network not idle after draining".into());
            }
            Ok(())
        },
    );
}

/// Small random VC buffers still cannot deadlock the network.
#[test]
fn network_drains_with_tight_buffers() {
    let topo = small_topo();
    check(
        "network_drains_with_tight_buffers",
        &Config::with_cases(24),
        |rng| (rng.next_u64(), rng.range_inclusive(1, 3) as u32),
        |&(seed, packet_kb)| {
            let params = NetworkParams {
                packet_size: packet_kb * 1024,
                terminal_vc_bytes: (packet_kb as u64) * 1024,
                local_vc_bytes: (packet_kb as u64) * 1024,
                global_vc_bytes: (packet_kb as u64) * 1024,
                ..NetworkParams::default()
            };
            let nodes = topo.config().total_nodes() as u64;
            let mut net = Network::new(topo.clone(), params, Routing::Adaptive, seed);
            let mut rng = Xoshiro256::seed_from(seed);
            for i in 0..80u64 {
                let src = NodeId(rng.next_below(nodes) as u32);
                let dst = NodeId(rng.next_below(nodes) as u32);
                net.send(Ns::ZERO, src, dst, 40_000, i);
            }
            let mut count = 0;
            while net.poll_delivery().is_some() {
                count += 1;
            }
            if count == 80 {
                Ok(())
            } else {
                Err(format!("only {count} of 80 messages delivered"))
            }
        },
    );
}

/// Every placement policy returns exactly `size` distinct free nodes.
#[test]
fn placements_exact_and_distinct() {
    let topo = small_topo();
    check(
        "placements_exact_and_distinct",
        &Config::with_cases(24),
        |rng| {
            (
                rng.next_u64(),
                rng.range_inclusive(1, 63) as u32,
                rng.index(PlacementPolicy::ALL.len()),
            )
        },
        |&(seed, size, policy_idx)| {
            let policy = PlacementPolicy::ALL[policy_idx];
            let mut pool = NodePool::new(&topo);
            let mut rng = Xoshiro256::seed_from(seed);
            let nodes = policy
                .allocate(&topo, &mut pool, size, &mut rng)
                .map_err(|e| format!("allocate failed: {e}"))?;
            if nodes.len() != size as usize {
                return Err(format!("{} nodes for size {size}", nodes.len()));
            }
            let set: std::collections::HashSet<_> = nodes.iter().collect();
            if set.len() != size as usize {
                return Err("duplicate nodes".into());
            }
            if pool.free_count() != 64 - size {
                return Err(format!("free_count {}", pool.free_count()));
            }
            Ok(())
        },
    );
}

/// Trace generation is valid for arbitrary rank counts and scales,
/// and total bytes scale linearly with msg_scale.
#[test]
fn traces_valid_and_scale_linearly() {
    check(
        "traces_valid_and_scale_linearly",
        &Config::with_cases(24),
        |rng| {
            (
                rng.range_inclusive(2, 79) as u32,
                rng.range_inclusive(10, 299) as u32,
                rng.index(3),
            )
        },
        |&(ranks, scale_pct, kind_idx)| {
            let kind = [AppKind::CrystalRouter, AppKind::FillBoundary, AppKind::Amg][kind_idx];
            let spec = WorkloadSpec {
                kind,
                ranks,
                msg_scale: 1.0,
                seed: 77,
            };
            let base = generate(&spec);
            base.validate().map_err(|e| format!("invalid trace: {e}"))?;
            let scaled = generate(&WorkloadSpec {
                msg_scale: scale_pct as f64 / 100.0,
                ..spec
            });
            let ratio = scaled.total_bytes() as f64 / base.total_bytes() as f64;
            let expected = scale_pct as f64 / 100.0;
            if (ratio / expected - 1.0).abs() < 0.02 {
                Ok(())
            } else {
                Err(format!("scaling ratio {ratio} vs expected {expected}"))
            }
        },
    );
}

/// BoxStats quartiles bracket each other and bound the data for any
/// input.
#[test]
fn boxstats_ordering() {
    check_with_shrink(
        "boxstats_ordering",
        &Config::with_cases(32),
        |rng| gen::vec_f64(rng, 1, 200, 0.0, 1e9),
        |v| shrink::vec(v, |_| Vec::new()),
        |data| {
            let s = BoxStats::from_samples(data).ok_or("empty samples")?;
            if s.min > s.q1 || s.q1 > s.median || s.median > s.q3 || s.q3 > s.max {
                return Err(format!("quartiles out of order: {s:?}"));
            }
            if s.mean < s.min || s.mean > s.max {
                return Err(format!("mean {} outside [{}, {}]", s.mean, s.min, s.max));
            }
            Ok(())
        },
    );
}

/// A CDF is a proper distribution function: monotone, ends at 100%,
/// quantile inverts fraction lookups.
#[test]
fn cdf_is_monotone_distribution() {
    check_with_shrink(
        "cdf_is_monotone_distribution",
        &Config::with_cases(32),
        |rng| gen::vec_f64(rng, 1, 200, 0.0, 1e6),
        |v| shrink::vec(v, |_| Vec::new()),
        |data| {
            let cdf = Cdf::from_samples(data.iter().copied());
            let steps: Vec<_> = cdf.steps().collect();
            if steps.len() != data.len() {
                return Err(format!("{} steps for {} samples", steps.len(), data.len()));
            }
            let mut prev = (f64::NEG_INFINITY, 0.0);
            for &(x, p) in &steps {
                if x < prev.0 || p < prev.1 {
                    return Err(format!("CDF not monotone at ({x}, {p})"));
                }
                prev = (x, p);
            }
            if (steps.last().unwrap().1 - 100.0).abs() > 1e-9 {
                return Err(format!("CDF ends at {}", steps.last().unwrap().1));
            }
            // quantile(fraction_at_or_below(x)) <= max and >= min for any x.
            let q = cdf.quantile(0.5);
            if q < cdf.min().unwrap() || q > cdf.max().unwrap() {
                return Err(format!("median {q} outside data range"));
            }
            Ok(())
        },
    );
}
