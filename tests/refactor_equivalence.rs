//! The shared-topology sweep path must be a pure optimization: running a
//! grid through `run_config_grid` (one `Arc<Topology>` shared by every
//! cell and worker) must produce bit-identical results to building a
//! fresh topology per cell, the way the runner did before the refactor.

use dragonfly_tradeoff::core::config::ExperimentConfig;
use dragonfly_tradeoff::core::report::ConfigLabel;
use dragonfly_tradeoff::core::runner::{execute_experiment, prepare_topology, ExperimentResult};
use dragonfly_tradeoff::core::sweep::run_config_grid;
use dragonfly_tradeoff::topology::Topology;
use std::sync::Arc;

fn grid_base() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small_test();
    cfg.msg_scale = 0.1;
    cfg
}

/// The pre-refactor per-cell path: a fresh `Topology::build` for every
/// experiment, run strictly sequentially.
fn run_fresh_per_cell(base: &ExperimentConfig, labels: &[ConfigLabel]) -> Vec<ExperimentResult> {
    labels
        .iter()
        .map(|l| {
            let mut cfg = base.clone();
            cfg.placement = l.placement;
            cfg.routing = l.routing;
            let topo = Arc::new(Topology::build(cfg.topology.clone()));
            execute_experiment(&cfg, topo)
        })
        .collect()
}

#[test]
fn shared_topology_grid_matches_fresh_per_cell() {
    let base = grid_base();
    let labels = ConfigLabel::all_ten();

    let fresh = run_fresh_per_cell(&base, &labels);
    let shared = run_config_grid(&base, &labels);

    assert_eq!(fresh.len(), shared.len());
    for (f, g) in fresh.iter().zip(&shared) {
        assert_eq!(f.config.placement, g.label.placement);
        assert_eq!(f.config.routing, g.label.routing);
        let s = &g.result;
        assert_eq!(f.placement, s.placement, "{}", g.label);
        assert_eq!(f.rank_comm_times, s.rank_comm_times, "{}", g.label);
        assert_eq!(f.rank_avg_hops, s.rank_avg_hops, "{}", g.label);
        assert_eq!(f.job_end, s.job_end, "{}", g.label);
        assert_eq!(f.events, s.events, "{}", g.label);
        assert_eq!(f.app_routers, s.app_routers, "{}", g.label);
        // Full per-channel metrics snapshots, channel by channel.
        let fm: Vec<_> = f.metrics.channels().collect();
        let sm: Vec<_> = s.metrics.channels().collect();
        assert_eq!(fm, sm, "metrics diverge under {}", g.label);
    }
}

#[test]
fn one_shared_arc_serves_every_cell() {
    // All ten cells share the same machine, so run_many must build the
    // topology exactly once; preparing any one cell yields an equal (but
    // separately built) topology.
    let base = grid_base();
    let topo = prepare_topology(&base);
    let mut cfg = base.clone();
    cfg.placement = ConfigLabel::all_ten()[3].placement;
    cfg.routing = ConfigLabel::all_ten()[3].routing;
    // Sharing the base topology across a different placement/routing cell
    // is exactly what the sweep does.
    let via_shared = execute_experiment(&cfg, topo.clone());
    let via_fresh = execute_experiment(&cfg, prepare_topology(&cfg));
    assert_eq!(via_shared.placement, via_fresh.placement);
    assert_eq!(via_shared.rank_comm_times, via_fresh.rank_comm_times);
}

#[test]
fn full_grid_is_audit_clean() {
    // The conservation auditor across the whole 10-cell placement x
    // routing grid: force audits on (they default off in release) and
    // require every cell to come back violation-free.
    let mut base = grid_base();
    base.network.audit = true;
    let results = run_config_grid(&base, &ConfigLabel::all_ten());
    assert_eq!(results.len(), 10);
    for g in &results {
        let rep = g.result.audit.as_ref().expect("audit was enabled");
        assert!(rep.is_clean(), "audit violations under {}:\n{rep}", g.label);
        assert!(rep.events_audited > 0, "{} audited nothing", g.label);
        assert!(rep.full_sweeps > 0, "{} never swept", g.label);
    }
}

#[test]
#[should_panic(expected = "different TopologyConfig")]
fn execute_rejects_mismatched_topology() {
    let base = grid_base();
    let topo = prepare_topology(&base);
    let mut other = base.clone();
    other.topology.nodes_per_router += 1;
    let _ = execute_experiment(&other, topo);
}
