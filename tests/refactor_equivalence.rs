//! The shared-topology sweep path must be a pure optimization: running a
//! grid through `run_config_grid` (one `Arc<Topology>` shared by every
//! cell and worker) must produce bit-identical results to building a
//! fresh topology per cell, the way the runner did before the refactor.

use dragonfly_tradeoff::core::config::ExperimentConfig;
use dragonfly_tradeoff::core::report::ConfigLabel;
use dragonfly_tradeoff::core::runner::{execute_experiment, prepare_topology, ExperimentResult};
use dragonfly_tradeoff::core::sweep::run_config_grid;
use dragonfly_tradeoff::topology::Topology;
use std::sync::Arc;

fn grid_base() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small_test();
    cfg.msg_scale = 0.1;
    cfg
}

/// The pre-refactor per-cell path: a fresh `Topology::build` for every
/// experiment, run strictly sequentially.
fn run_fresh_per_cell(base: &ExperimentConfig, labels: &[ConfigLabel]) -> Vec<ExperimentResult> {
    labels
        .iter()
        .map(|l| {
            let mut cfg = base.clone();
            cfg.placement = l.placement;
            cfg.routing = l.routing;
            let topo = Arc::new(Topology::build(cfg.topology.clone()));
            execute_experiment(&cfg, topo)
        })
        .collect()
}

#[test]
fn shared_topology_grid_matches_fresh_per_cell() {
    let base = grid_base();
    let labels = ConfigLabel::all_ten();

    let fresh = run_fresh_per_cell(&base, &labels);
    let shared = run_config_grid(&base, &labels);

    assert_eq!(fresh.len(), shared.len());
    for (f, g) in fresh.iter().zip(&shared) {
        assert_eq!(f.config.placement, g.label.placement);
        assert_eq!(f.config.routing, g.label.routing);
        let s = &g.result;
        assert_eq!(f.placement, s.placement, "{}", g.label);
        assert_eq!(f.rank_comm_times, s.rank_comm_times, "{}", g.label);
        assert_eq!(f.rank_avg_hops, s.rank_avg_hops, "{}", g.label);
        assert_eq!(f.job_end, s.job_end, "{}", g.label);
        assert_eq!(f.events, s.events, "{}", g.label);
        assert_eq!(f.app_routers, s.app_routers, "{}", g.label);
        // Full per-channel metrics snapshots, channel by channel.
        let fm: Vec<_> = f.metrics.channels().collect();
        let sm: Vec<_> = s.metrics.channels().collect();
        assert_eq!(fm, sm, "metrics diverge under {}", g.label);
    }
}

#[test]
fn one_shared_arc_serves_every_cell() {
    // All ten cells share the same machine, so run_many must build the
    // topology exactly once; preparing any one cell yields an equal (but
    // separately built) topology.
    let base = grid_base();
    let topo = prepare_topology(&base);
    let mut cfg = base.clone();
    cfg.placement = ConfigLabel::all_ten()[3].placement;
    cfg.routing = ConfigLabel::all_ten()[3].routing;
    // Sharing the base topology across a different placement/routing cell
    // is exactly what the sweep does.
    let via_shared = execute_experiment(&cfg, topo.clone());
    let via_fresh = execute_experiment(&cfg, prepare_topology(&cfg));
    assert_eq!(via_shared.placement, via_fresh.placement);
    assert_eq!(via_shared.rank_comm_times, via_fresh.rank_comm_times);
}

#[test]
fn full_grid_is_audit_clean() {
    // The conservation auditor across the whole 10-cell placement x
    // routing grid: force audits on (they default off in release) and
    // require every cell to come back violation-free.
    let mut base = grid_base();
    base.network.audit = true;
    let results = run_config_grid(&base, &ConfigLabel::all_ten());
    assert_eq!(results.len(), 10);
    for g in &results {
        let rep = g.result.audit.as_ref().expect("audit was enabled");
        assert!(rep.is_clean(), "audit violations under {}:\n{rep}", g.label);
        assert!(rep.events_audited > 0, "{} audited nothing", g.label);
        assert!(rep.full_sweeps > 0, "{} never swept", g.label);
    }
}

#[test]
#[should_panic(expected = "different TopologyConfig")]
fn execute_rejects_mismatched_topology() {
    let base = grid_base();
    let topo = prepare_topology(&base);
    let mut other = base.clone();
    other.topology.nodes_per_router += 1;
    let _ = execute_experiment(&other, topo);
}

/// The `RoutingPolicy`-trait rewrite of the route computer must be a pure
/// refactor for the three historical policies: a frozen copy of the
/// pre-trait `compute` / `compute_adaptive` / Valiant-loop algorithms,
/// fed the identical RNG stream, must agree route for route (same
/// channels, same order, same RNG consumption) under a congested
/// occupancy signal.
#[test]
fn routing_trait_matches_frozen_pre_refactor_algorithms() {
    use dragonfly_tradeoff::engine::Xoshiro256;
    use dragonfly_tradeoff::network::routing::{RouteComputer, Routing};
    use dragonfly_tradeoff::network::NetworkParams;
    use dragonfly_tradeoff::topology::{paths, ChannelId, NodeId, TopologyConfig};

    let topo = Topology::build(TopologyConfig::small_test());
    let params = NetworkParams::default();
    let occ = |c: ChannelId| (c.0 as u64 * 131) % 9000;

    for routing in [Routing::Minimal, Routing::Adaptive, Routing::Valiant] {
        for seed in [42u64, 0x5EED, 7] {
            let mut modern = RouteComputer::new(routing, Xoshiro256::seed_from(seed));
            let mut rng = Xoshiro256::seed_from(seed);
            let mut scratch: Vec<ChannelId> = Vec::new();
            let mut best: Vec<ChannelId> = Vec::new();
            for i in 0..200u32 {
                let s = NodeId(i % topo.config().total_nodes());
                let d = NodeId((i * 29 + 3) % topo.config().total_nodes());
                let src_r = topo.node_router(s);
                let dst_r = topo.node_router(d);

                // --- frozen pre-refactor algorithm ---
                let mut legacy: Vec<ChannelId> = Vec::new();
                match routing {
                    Routing::Minimal => {
                        paths::push_minimal(&topo, src_r, dst_r, &mut rng, &mut legacy);
                    }
                    Routing::Valiant => loop {
                        scratch.clear();
                        let inter = paths::random_intermediate(&topo, &mut rng);
                        paths::push_minimal(&topo, src_r, inter, &mut rng, &mut scratch);
                        paths::push_minimal(&topo, inter, dst_r, &mut rng, &mut scratch);
                        if scratch.len() <= paths::MAX_ROUTER_HOPS {
                            legacy.extend_from_slice(&scratch);
                            break;
                        }
                    },
                    Routing::Adaptive => {
                        let score = |cand: &[ChannelId], bias: u64| -> u64 {
                            let hops = cand.len() as u64;
                            let first = cand.first().map(|&c| occ(c)).unwrap_or(0);
                            first.saturating_mul(hops).saturating_add(bias)
                        };
                        let mut best_score = u64::MAX;
                        best.clear();
                        for _ in 0..2 {
                            scratch.clear();
                            paths::push_minimal(&topo, src_r, dst_r, &mut rng, &mut scratch);
                            let sc = score(&scratch, 0);
                            if sc < best_score {
                                best_score = sc;
                                std::mem::swap(&mut best, &mut scratch);
                            }
                        }
                        for _ in 0..2 {
                            let inter = paths::random_intermediate(&topo, &mut rng);
                            scratch.clear();
                            paths::push_minimal(&topo, src_r, inter, &mut rng, &mut scratch);
                            paths::push_minimal(&topo, inter, dst_r, &mut rng, &mut scratch);
                            if scratch.len() <= paths::MAX_ROUTER_HOPS {
                                let sc = score(&scratch, params.adaptive_bias_bytes);
                                if sc < best_score {
                                    best_score = sc;
                                    std::mem::swap(&mut best, &mut scratch);
                                }
                            }
                        }
                        legacy.extend_from_slice(&best);
                    }
                    _ => unreachable!(),
                }

                // --- trait-based computer ---
                let mut modern_route = Vec::new();
                modern.compute(&topo, &params, s, d, occ, &mut modern_route);

                assert_eq!(
                    legacy,
                    modern_route,
                    "{} diverged from the pre-refactor algorithm at packet {i} (seed {seed:#x})",
                    routing.label()
                );
            }
        }
    }
}
