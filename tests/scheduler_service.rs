//! Integration tests for the continuous service mode and the scheduler
//! substrate it replaced: two-run byte-identity over a realistic Poisson
//! stream, conservation-audit cleanliness, and the admission
//! re-attempt-on-completion regression (a blocked head must start the
//! instant its blocker finishes, and must not wedge fitting followers).

use dragonfly_tradeoff::core::config::{AppSelection, Parallelism, RoutingPolicy};
use dragonfly_tradeoff::core::multijob::JobSpec;
use dragonfly_tradeoff::core::scheduler::{run_schedule, SchedulerConfig, Submission};
use dragonfly_tradeoff::core::service::{
    run_service, tenant_slos, AdmissionPolicy, PlacementChoice, ServiceConfig, ServiceJob,
    ServiceSubmission, ServiceWorkload,
};
use dragonfly_tradeoff::engine::Ns;
use dragonfly_tradeoff::network::NetworkParams;
use dragonfly_tradeoff::placement::PlacementPolicy;
use dragonfly_tradeoff::topology::TopologyConfig;
use dragonfly_tradeoff::workloads::{poisson_arrivals, ArrivalPlan};

fn poisson_service_cfg(admission: AdmissionPolicy, jobs: u32) -> ServiceConfig {
    // A mixed CR/FB/AMG + background stream sized for the 64-node test
    // machine; `min_jobs` extends the stream until the floor is met.
    let arrivals = poisson_arrivals(&ArrivalPlan {
        rate_per_ms: 4.0,
        duration: Ns::from_ms(2),
        min_jobs: jobs,
        background_share: 0.25,
        min_ranks: 4,
        max_ranks: 24,
        msg_scale: 0.25,
        seed: 0x5EAC,
    });
    ServiceConfig {
        topology: TopologyConfig::small_test(),
        network: NetworkParams::default(),
        routing: RoutingPolicy::Adaptive,
        admission,
        submissions: arrivals
            .iter()
            .map(|a| ServiceSubmission {
                job: ServiceJob::from_arrival(a),
                arrival: a.at,
            })
            .collect(),
        seed: 0xD06,
        parallelism: Parallelism::Serial,
    }
}

#[test]
fn service_poisson_stream_two_runs_byte_identical() {
    let cfg = poisson_service_cfg(AdmissionPolicy::EasyBackfill, 60);
    let a = run_service(&cfg);
    let b = run_service(&cfg);
    assert_eq!(
        a.outcomes, b.outcomes,
        "same config must reproduce the identical result"
    );
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.events, b.events);
    assert_eq!(a.job_slots, b.job_slots);
    assert_eq!(a.outcomes.len(), cfg.submissions.len());
    assert_eq!(tenant_slos(&a.outcomes), tenant_slos(&b.outcomes));
}

#[test]
fn service_poisson_stream_audit_clean() {
    let mut cfg = poisson_service_cfg(AdmissionPolicy::EasyBackfill, 40);
    cfg.network.audit = true;
    let r = run_service(&cfg);
    let audit = r.audit.expect("audit enabled");
    assert!(audit.is_clean(), "conservation audit violated: {audit:?}");
}

#[test]
fn service_state_bounded_on_long_stream() {
    // Far more jobs than ever run concurrently: the slot high-water mark
    // must track peak concurrency, not stream length (the old scheduler
    // kept every finished job's trace and rank state alive forever).
    let cfg = poisson_service_cfg(AdmissionPolicy::EasyBackfill, 120);
    let r = run_service(&cfg);
    assert!(cfg.submissions.len() >= 120);
    assert_eq!(r.outcomes.len(), cfg.submissions.len());
    assert!(
        r.job_slots <= 16,
        "{} slots materialized for a 64-node machine (peak active {})",
        r.job_slots,
        r.peak_active_jobs
    );
    assert_eq!(r.job_slots, r.peak_active_jobs);
}

fn scheduler_cfg(submissions: Vec<Submission>) -> SchedulerConfig {
    SchedulerConfig {
        topology: TopologyConfig::small_test(),
        network: NetworkParams::default(),
        routing: RoutingPolicy::Adaptive,
        submissions,
        seed: 0xBEEF,
        parallelism: Parallelism::Serial,
    }
}

fn sub(app: AppSelection, arrival: Ns) -> Submission {
    Submission {
        job: JobSpec {
            app,
            placement: PlacementPolicy::Contiguous,
            msg_scale: 0.3,
        },
        arrival,
    }
}

#[test]
fn scheduler_two_runs_byte_identical() {
    let subs = vec![
        sub(AppSelection::CrystalRouter { ranks: 24 }, Ns::ZERO),
        sub(AppSelection::Amg { ranks: 27 }, Ns::from_us(30)),
        sub(AppSelection::FillBoundary { ranks: 16 }, Ns::from_us(60)),
    ];
    let a = run_schedule(&scheduler_cfg(subs.clone()));
    let b = run_schedule(&scheduler_cfg(subs));
    assert_eq!(a, b);
}

#[test]
fn admission_reattempts_on_completion() {
    // Regression: a head job too big to start must be admitted the
    // instant its blocker completes — admission re-runs on every network
    // event, not only on arrivals. A fitting follower behind it must also
    // start (under FCFS, after the head; never wedged).
    let subs = vec![
        sub(AppSelection::CrystalRouter { ranks: 48 }, Ns::ZERO),
        sub(AppSelection::FillBoundary { ranks: 48 }, Ns(1)),
        sub(AppSelection::Amg { ranks: 8 }, Ns(2)),
    ];
    let r = run_schedule(&scheduler_cfg(subs));
    assert_eq!(r.jobs.len(), 3, "every job must eventually run");
    let by_arrival = |at: Ns| {
        r.jobs
            .iter()
            .find(|j| j.submission.arrival == at)
            .expect("job completed")
    };
    let head = by_arrival(Ns::ZERO);
    let blocked = by_arrival(Ns(1));
    let follower = by_arrival(Ns(2));
    assert_eq!(
        blocked.started_at, head.finished_at,
        "blocked head must start exactly when its blocker finishes"
    );
    assert!(
        follower.started_at >= blocked.started_at,
        "FCFS order holds"
    );
    assert!(follower.finished_at > follower.started_at);
}

#[test]
fn easy_backfill_starts_fitting_follower_early() {
    // The same head-blocker shape under EASY backfill: the 8-rank
    // follower fits beside the running 48-rank job without delaying the
    // blocked head's reservation, so it starts immediately instead.
    let app = |ranks| ServiceJob {
        workload: ServiceWorkload::App(AppSelection::Amg { ranks }),
        placement: PlacementChoice::Fixed(PlacementPolicy::Contiguous),
        msg_scale: 0.3,
        tenant: 2,
        estimate: Ns::from_us(300),
    };
    let submissions = vec![
        ServiceSubmission {
            job: app(48),
            arrival: Ns::ZERO,
        },
        ServiceSubmission {
            job: app(48),
            arrival: Ns(1),
        },
        ServiceSubmission {
            job: app(8),
            arrival: Ns(2),
        },
    ];
    let cfg = ServiceConfig {
        topology: TopologyConfig::small_test(),
        network: NetworkParams::default(),
        routing: RoutingPolicy::Adaptive,
        admission: AdmissionPolicy::EasyBackfill,
        submissions,
        seed: 0xBEEF,
        parallelism: Parallelism::Serial,
    };
    let r = run_service(&cfg);
    let started = |uid: u64| r.outcomes.iter().find(|o| o.uid == uid).unwrap().started_at;
    assert_eq!(started(2), Ns(2), "follower backfills into the surplus now");
    assert!(
        started(1) > started(2),
        "blocked head keeps its later start"
    );
}

#[test]
fn sharded_service_run_completes_and_reproduces() {
    let mut cfg = poisson_service_cfg(AdmissionPolicy::EasyBackfill, 30);
    cfg.parallelism = Parallelism::IntraRun(2);
    let a = run_service(&cfg);
    let b = run_service(&cfg);
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.events, b.events);
    assert_eq!(a.outcomes.len(), cfg.submissions.len());
}
