//! A handful of audited stress-fuzzer scenarios in the normal test suite
//! (the `stress` binary runs many more; see `dfly_bench::stress`).

use dfly_bench::stress::{generate, run_stress, shrink_candidates, topologies};
use dragonfly_tradeoff::engine::Xoshiro256;

#[test]
fn stress_seeds_run_clean() {
    let summary = run_stress(6, 0xC0FFEE).expect("audited stress scenarios must be clean");
    assert_eq!(summary.cases, 6);
    assert!(summary.events > 0);
}

#[test]
fn every_stress_topology_validates() {
    for t in topologies() {
        t.validate().expect("stress topology must be valid");
        assert!(t.total_nodes() >= 16);
    }
}

#[test]
fn generated_scenarios_are_valid_and_shrinkable() {
    let mut rng = Xoshiro256::seed_from(99);
    for _ in 0..50 {
        let s = generate(&mut rng);
        s.config()
            .validate()
            .expect("generator must emit valid configs");
        // Shrinking strictly simplifies: every candidate differs from the
        // scenario it came from.
        for c in shrink_candidates(&s) {
            assert_ne!(c, s);
            c.config().validate().expect("shrunk configs stay valid");
        }
    }
}
