//! The paper's qualitative findings, asserted end-to-end on the small
//! machine. These are the claims EXPERIMENTS.md tracks at full scale; the
//! integration suite pins the directions that must hold at any scale.

use dragonfly_tradeoff::core::config::{AppSelection, ExperimentConfig, RoutingPolicy};
use dragonfly_tradeoff::core::report::ConfigLabel;
use dragonfly_tradeoff::core::runner::run_experiment;
use dragonfly_tradeoff::core::sweep::run_config_grid;
use dragonfly_tradeoff::network::MetricsFilter;
use dragonfly_tradeoff::placement::PlacementPolicy;

fn cfg(app: AppSelection, p: PlacementPolicy, r: RoutingPolicy) -> ExperimentConfig {
    let mut c = ExperimentConfig::small_test();
    c.app = app;
    c.placement = p;
    c.routing = r;
    c
}

/// Key finding 1: localized communication (contiguous) reduces hops.
#[test]
fn contiguous_reduces_hops_for_every_app() {
    for app in [
        AppSelection::CrystalRouter { ranks: 24 },
        AppSelection::FillBoundary { ranks: 27 },
        AppSelection::Amg { ranks: 27 },
    ] {
        let cont = run_experiment(&cfg(
            app,
            PlacementPolicy::Contiguous,
            RoutingPolicy::Minimal,
        ));
        let rand = run_experiment(&cfg(
            app,
            PlacementPolicy::RandomNode,
            RoutingPolicy::Minimal,
        ));
        assert!(
            cont.mean_hops() < rand.mean_hops(),
            "{app:?}: cont {:.2} !< rand {:.2}",
            cont.mean_hops(),
            rand.mean_hops()
        );
    }
}

/// Key finding 2: localized communication risks local-link saturation —
/// contiguous placement concentrates traffic on fewer channels.
#[test]
fn contiguous_concentrates_local_traffic() {
    let app = AppSelection::FillBoundary { ranks: 27 };
    let cont = run_experiment(&cfg(
        app,
        PlacementPolicy::Contiguous,
        RoutingPolicy::Minimal,
    ));
    let rand = run_experiment(&cfg(
        app,
        PlacementPolicy::RandomNode,
        RoutingPolicy::Minimal,
    ));
    let all = MetricsFilter::All;
    // The busiest local channel under contiguous beats random's busiest.
    let peak = |r: &dragonfly_tradeoff::core::runner::ExperimentResult| {
        r.metrics
            .local_traffic(&all)
            .into_iter()
            .fold(0.0f64, f64::max)
    };
    assert!(
        peak(&cont) > peak(&rand),
        "contiguous peak {:.1} !> random peak {:.1}",
        peak(&cont),
        peak(&rand)
    );
    // ... while random-node touches more channels.
    let nonzero = |r: &dragonfly_tradeoff::core::runner::ExperimentResult| {
        r.metrics
            .local_traffic(&all)
            .iter()
            .filter(|&&t| t > 0.0)
            .count()
    };
    assert!(nonzero(&rand) >= nonzero(&cont));
}

/// Key finding 3: the communication-intensive apps (CR, FB) prefer
/// balanced traffic — random placement beats contiguous.
#[test]
fn intensive_apps_prefer_random_placement() {
    for app in [
        AppSelection::CrystalRouter { ranks: 24 },
        AppSelection::FillBoundary { ranks: 27 },
    ] {
        let grid = run_config_grid(
            &cfg(app, PlacementPolicy::Contiguous, RoutingPolicy::Minimal),
            &ConfigLabel::extremes(),
        );
        let median = |i: usize| grid[i].result.comm_time_stats().median;
        // extremes: [cont-min, rand-min, cont-adp, rand-adp]
        assert!(median(1) < median(0), "{app:?}: rand-min !< cont-min");
        assert!(median(3) < median(2), "{app:?}: rand-adp !< cont-adp");
    }
}

/// Key finding 4 (sensitivity, Fig 7 direction): heavier messages make
/// contiguous placement worse relative to random for FB. A genuinely
/// localized job (16 of 64 nodes — one group) shows the crossover even on
/// the toy machine.
#[test]
fn fb_contiguous_penalty_grows_with_load() {
    let app = AppSelection::FillBoundary { ranks: 16 };
    let ratio_at = |scale: f64| {
        let mut c1 = cfg(app, PlacementPolicy::Contiguous, RoutingPolicy::Minimal);
        c1.msg_scale = scale;
        let mut c2 = cfg(app, PlacementPolicy::RandomNode, RoutingPolicy::Adaptive);
        c2.msg_scale = scale;
        run_experiment(&c1).max_comm_time().as_nanos() as f64
            / run_experiment(&c2).max_comm_time().as_nanos() as f64
    };
    let light = ratio_at(0.02);
    let heavy = ratio_at(1.5);
    assert!(
        heavy > light,
        "cont/rand ratio should grow with load: light {light:.2}, heavy {heavy:.2}"
    );
}

/// Adaptive routing pays hops to avoid saturation (the routing half of
/// the trade-off). On the toy machine minimal intra-group routes are 1-2
/// hops, so the UGAL first-hop signal (capped by the VC buffers) needs a
/// proportionally lower detour bias — the production default is tuned for
/// Theta-length paths.
#[test]
fn adaptive_trades_hops_for_less_saturation_under_contiguous_fb() {
    let app = AppSelection::FillBoundary { ranks: 27 };
    let mut min_cfg = cfg(app, PlacementPolicy::Contiguous, RoutingPolicy::Minimal);
    min_cfg.network.adaptive_bias_bytes = 2048;
    let mut adp_cfg = cfg(app, PlacementPolicy::Contiguous, RoutingPolicy::Adaptive);
    adp_cfg.network.adaptive_bias_bytes = 2048;
    let min = run_experiment(&min_cfg);
    let adp = run_experiment(&adp_cfg);
    assert!(adp.mean_hops() >= min.mean_hops());
    let all = MetricsFilter::All;
    let sat = |r: &dragonfly_tradeoff::core::runner::ExperimentResult| {
        r.metrics.local_saturation_ms(&all).iter().sum::<f64>()
    };
    assert!(
        sat(&adp) < sat(&min),
        "adaptive local saturation {:.3} !< minimal {:.3}",
        sat(&adp),
        sat(&min)
    );
}
